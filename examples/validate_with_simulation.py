"""Validate optimized solutions with the event-driven simulator.

The paper scores solutions analytically (routing cost + worst
load-to-capacity ratio).  This example replays two solutions — the
capacity-aware alternating optimization and the capacity-oblivious
'SP + RNR' benchmark — at the request level: Poisson arrivals, one serving
path per request, FIFO links.  The congested benchmark's latency explodes
and work spills past the horizon, making the paper's "severe congestion"
verdict operational.

Run:  python examples/validate_with_simulation.py
"""

from repro.core import congestion
from repro.experiments import ScenarioConfig, algorithms as alg, build_scenario
from repro.simulation import SimulationConfig, scale_problem, simulate


def main() -> None:
    scenario = build_scenario(ScenarioConfig(seed=0))
    problem = scenario.problem
    # Scale demand and capacities jointly: utilizations are invariant, but
    # ~2M requests/hour become a simulable ~600 requests over 3 hours.
    scaled = scale_problem(problem, 1e-3)

    for name, solver in (
        ("alternating (ours)", alg.alternating(mmufp_method="best")),
        ("SP + RNR [3]", alg.ksp(1)),
    ):
        solution = solver(scenario)
        analytic = congestion(problem, solution.routing)
        report = simulate(
            scaled, solution.routing, SimulationConfig(horizon=3.0, seed=42)
        )
        print(f"=== {name} ===")
        print(f"analytic congestion:       {analytic:10.2f}")
        print(f"simulated max utilization: {report.max_utilization:10.2f}")
        print(f"requests delivered:        {report.delivered:10d}")
        print(f"mean / p95 latency:        {report.mean_latency:10.4f} /"
              f" {report.p95_latency:.4f} h")
        print(f"deliveries past horizon:   {report.late_deliveries:10d}")
        print()
    print(
        "The benchmark's overloaded links queue up: latencies grow by orders"
        " of magnitude and a backlog remains at the horizon, while the"
        " capacity-aware solution delivers promptly."
    )


if __name__ == "__main__":
    main()
