"""CDN scenario: unsplittable routing from replicated servers (Algorithm 2).

Models a CDN with geographically distributed full-catalog servers (the
paper's binary-cache-capacity case, Section 4.2): the origin plus one edge
site replicate everything, and each user request must follow a single path.
Sweeps Algorithm 2's rounding granularity K and compares against the
splittable lower bound and the capacity-oblivious route-to-nearest-replica:

- RNR is the cheapest but overloads links by an order of magnitude;
- K = 2 reproduces the state-of-the-art rounding of [33];
- growing K drives congestion toward the splittable optimum at <= its cost,
  the paper's (1 + eps, 1) bicriteria result (Theorem 4.7).

Run:  python examples/cdn_unsplittable_flow.py
"""

from repro.core import congestion, routing_cost
from repro.experiments import (
    ScenarioConfig,
    algorithms as alg,
    binary_cache_servers,
    build_scenario,
)


def main() -> None:
    config = ScenarioConfig(level="chunk", link_capacity_fraction=0.035, seed=0)
    scenario = build_scenario(config)
    servers = binary_cache_servers(scenario)
    print(f"full-catalog servers: {servers}")
    print(f"requests: {len(scenario.problem.demand)} (chunk level)\n")

    contenders = {"RNR [3]": alg.rnr_binary(servers)}
    for K in (2, 10, 100, 1000):
        contenders[f"Alg 2, K={K}"] = alg.alg2_binary(servers, K)
    contenders["splittable LP bound"] = alg.splittable_binary(servers)

    problem = scenario.problem
    print(f"{'algorithm':<22}{'cost':>16}{'congestion':>14}")
    print("-" * 52)
    for name, solver in contenders.items():
        solution = solver(scenario)
        cost = routing_cost(problem, solution.routing)
        cong = congestion(problem, solution.routing)
        print(f"{name:<22}{cost:>16,.0f}{cong:>14.2f}")


if __name__ == "__main__":
    main()
