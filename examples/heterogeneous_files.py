"""Caching whole video files of heterogeneous sizes (Section 5).

File-level caching keeps the application simple (no chunk reassembly) but
breaks the equal-swap pipage rounding the state of the art relies on: the
benchmarks of [3] and [38] produce placements that exceed cache capacities,
while the paper's greedy algorithm (1/(1+p)-approximation under the
p-independence constraint, Theorem 5.2) stays feasible.

Run:  python examples/heterogeneous_files.py
"""

from repro.baselines import candidate_path_baseline, shortest_path_baseline
from repro.core import (
    Solution,
    greedy_rnr_placement,
    max_cache_occupancy,
    route_to_nearest_replica,
    routing_cost,
)
from repro.experiments import ScenarioConfig, build_scenario


def main() -> None:
    config = ScenarioConfig(
        level="file", cache_capacity=2, link_capacity_fraction=None, seed=0
    )
    scenario = build_scenario(config)
    problem = scenario.problem
    sizes = problem.item_sizes or {}
    print("catalog (video, size MB):")
    for item in problem.catalog:
        print(f"  {item}: {sizes[item]:8.1f}")
    cache_node = scenario.edge_nodes[0]
    print(
        f"\nedge caches hold {problem.network.cache_capacity(cache_node):,.0f} MB"
        " each (2 average-size files)\n"
    )

    placement = greedy_rnr_placement(problem)
    ours = Solution(placement, route_to_nearest_replica(problem, placement))
    contenders = {
        "greedy (ours, Thm 5.2)": ours,
        "SP [38]": shortest_path_baseline(problem),
        "k-SP + RNR [3]": candidate_path_baseline(problem, k=10),
    }

    print(f"{'algorithm':<24}{'cost':>18}{'max occupancy':>16}")
    print("-" * 58)
    for name, solution in contenders.items():
        cost = routing_cost(problem, solution.routing)
        occupancy = max_cache_occupancy(problem, solution.placement)
        flag = "  <-- infeasible!" if occupancy > 1 + 1e-9 else ""
        print(f"{name:<24}{cost:>18,.0f}{occupancy:>16.2f}{flag}")

    print(
        "\nThe benchmarks look cheaper only because their placements overfill"
        " caches (occupancy > 1), exactly as the paper's Fig. 5 reports."
    )


if __name__ == "__main__":
    main()
