"""Failure injection on the 4-node gadget: the smallest survivability story.

Builds the paper's Fig. 9 gadget (origin ``vs``, caches ``v1``/``v2``,
client ``s``), places the hot item on the cheap cache, then kills every
link and every node (except the client) one at a time.  For each failure
the graceful-degradation policy re-routes to the next-nearest surviving
replica and reports cost inflation, unserved demand, and congestion.

Run with:  PYTHONPATH=src python examples/failure_injection_demo.py
"""

from repro.robustness import FailureScenario, LinkFailure, apply_failure, recover
from repro.robustness.demo import gadget_placement, gadget_problem, run_gadget_demo


def main() -> None:
    report = run_gadget_demo(repair=True)
    print(report.format(title="gadget survivability (single link + node faults)"))

    # Zoom into the most interesting failure: the cheap v1 -> s link dies,
    # so the hot item's traffic detours through v2 at ~667x the healthy cost.
    problem = gadget_problem()
    worst = apply_failure(
        problem,
        FailureScenario(name="link:v1--s", faults=(LinkFailure("v1", "s"),)),
    )
    result = recover(worst, gadget_placement())
    print()
    print(f"after {worst.scenario.describe()}:")
    for request, paths in sorted(result.routing.paths.items(), key=repr):
        routes = ", ".join("->".join(map(str, p.path)) for p in paths)
        print(f"  {request}: {routes or 'UNSERVED'}")
    assert report.fully_served_scenarios == len(report.records)


if __name__ == "__main__":
    main()
