"""Capacity planning: how much edge cache is enough?

An operator question the sweep API answers directly: sweep the per-node
cache size on the paper's default scenario and find the smallest deployment
whose routing cost is within 25% of the abundant-cache regime, and whose
links stay feasible.

Run:  python examples/capacity_planning.py
"""

from repro.experiments import (
    MonteCarloConfig,
    ScenarioConfig,
    algorithms as alg,
    format_sweep,
    sweep_parameter,
)

CACHE_SIZES = (3, 6, 12, 24, 36, 54)


def main() -> None:
    rows = sweep_parameter(
        ScenarioConfig(level="chunk"),
        "cache_capacity",
        list(CACHE_SIZES),
        {"alternating": alg.alternating(mmufp_method="best", max_iterations=8)},
        MonteCarloConfig(n_runs=2),
    )
    print(
        format_sweep(
            rows,
            ["cache_capacity", "cost", "congestion", "occupancy"],
            title="Cache-size sweep (Abovenet, chunk level, general case)",
        )
    )

    # zeta = |C| replicates the whole catalog at every edge (cost ~ 0); pick
    # the smallest deployment capturing >= 90% of that achievable saving.
    worst, best = rows[0]["cost"], rows[-1]["cost"]
    target = worst - 0.9 * (worst - best)
    chosen = next(r for r in rows if r["cost"] <= target)
    print(
        f"\nCost spans {worst:,.0f} (zeta={CACHE_SIZES[0]}) down to "
        f"{best:,.0f} (zeta={CACHE_SIZES[-1]}, full catalog everywhere).\n"
        f"Smallest cache capturing 90% of that saving: zeta = "
        f"{chosen['cache_capacity']:g} chunks per edge node "
        f"(cost {chosen['cost']:,.0f}, congestion {chosen['congestion']:.3f})."
    )
    marginal = [
        (a["cache_capacity"], a["cost"] - b["cost"])
        for a, b in zip(rows[:-1], rows[1:])
    ]
    print("\nMarginal value of the next increment (diminishing returns):")
    for zeta, saving in marginal:
        print(f"  beyond zeta={zeta:g}: saves {saving:,.0f}")


if __name__ == "__main__":
    main()
