"""Quickstart: joint caching and routing on a small ISP network.

Builds the Abilene-like backbone, places an origin server and three edge
caches, and runs

1. Algorithm 1 (unlimited link capacities, (1 - 1/e)-approximation), and
2. the alternating optimization for the capacitated general case,

printing the routing cost, congestion, and cache contents of each solution.

Run:  python examples/quickstart.py
"""

import numpy as np

from repro.core import (
    ProblemInstance,
    algorithm1,
    alternating_optimization,
    check_feasibility,
    congestion,
    pin_full_catalog,
    routing_cost,
)
from repro.graph import abilene_like, edge_caching_roles


def main() -> None:
    rng = np.random.default_rng(7)
    network = abilene_like()
    origin, edge_nodes = edge_caching_roles(network, num_edge_nodes=3)
    print(f"network: {network}, origin={origin}, edge caches={edge_nodes}")

    # Paper-style costs: the origin is far away, internal links are cheap.
    for (u, v) in network.edges:
        lo, hi = (100, 200) if origin in (u, v) else (1, 20)
        network.graph.edges[u, v]["cost"] = float(rng.uniform(lo, hi))

    catalog = tuple(f"video-{k}" for k in range(8))
    demand = {}
    for rank, item in enumerate(catalog):
        for s in edge_nodes:
            demand[(item, s)] = float(rng.uniform(5, 20) / (rank + 1))
    for v in edge_nodes:
        network.set_cache_capacity(v, 2)

    problem = ProblemInstance(
        network=network,
        catalog=catalog,
        demand=demand,
        pinned=pin_full_catalog(catalog, [origin]),
    )

    # ------------------------------------------------------------------
    # 1. Unlimited link capacities: Algorithm 1 + route-to-nearest-replica.
    # ------------------------------------------------------------------
    result = algorithm1(problem)
    solution = result.solution
    print("\n=== Algorithm 1 (unlimited link capacities) ===")
    print(f"routing cost: {routing_cost(problem, solution.routing):.1f}")
    for v in edge_nodes:
        print(f"  cache @ {v}: {sorted(solution.placement.items_at(v))}")
    print(f"feasible: {check_feasibility(problem, solution).feasible}")

    # ------------------------------------------------------------------
    # 2. General case: tight links, alternating caching/routing optimization.
    # ------------------------------------------------------------------
    network.set_uniform_link_capacity(0.25 * problem.total_demand)
    alt = alternating_optimization(
        problem, mmufp_method="best", rng=np.random.default_rng(0)
    )
    print("\n=== Alternating optimization (capacitated) ===")
    print(f"routing cost: {routing_cost(problem, alt.solution.routing):.1f}")
    print(f"congestion:   {congestion(problem, alt.solution.routing):.3f}")
    print(f"iterations:   {alt.iterations} (converged: {alt.converged})")
    for entry in alt.history:
        print(
            f"  iter {entry['iteration']}: cost={entry['cost']:.1f} "
            f"congestion={entry['congestion']:.3f} accepted={entry['accepted']}"
        )


if __name__ == "__main__":
    main()
