"""A day of online operation: hourly re-optimization under predicted demand.

Simulates the deployment loop the paper's evaluation models: every hour the
operator predicts each video's request rate (Gaussian-process regression,
refit every 5 hours) and re-optimizes caching and routing; the decisions are
then charged against the hour's true demand.  Compares three planning
policies over the same hours:

- oracle:     plan on the true rates (the paper's light bars);
- GPR:        plan on predicted rates (the dark bars);
- static:     optimize once at hour 0 and never adapt.

Run:  python examples/online_operation.py          (oracle + static, fast)
      python examples/online_operation.py --gpr    (adds GPR prediction)
"""

import sys

from repro.core import congestion, routing_cost
from repro.experiments import (
    PredictionConfig,
    ScenarioConfig,
    algorithms as alg,
    run_online,
)
from repro.experiments.online import predict_rate_matrix
from repro.workload import TraceConfig, synthesize_trace, top_videos

HOURS = 6


def static_policy_factory():
    """Optimize at hour 0, reuse the same solution afterwards."""
    cache = {}

    def run(scenario):
        if "solution" not in cache:
            cache["solution"] = alg.alternating(mmufp_method="best")(scenario)
        return cache["solution"]

    return run


def main(with_gpr: bool) -> None:
    config = ScenarioConfig(seed=0)
    trace_config = TraceConfig(seed=0)
    trace = synthesize_trace(videos=top_videos(config.num_videos), config=trace_config)

    policies = {
        "oracle (hourly)": dict(algorithm=alg.alternating(mmufp_method="best")),
        "static (hour 0)": dict(algorithm=static_policy_factory()),
    }
    if with_gpr:
        print("fitting GPR predictors for every video ...")
        matrix = predict_rate_matrix(trace, HOURS, PredictionConfig())
        policies["GPR (hourly)"] = dict(
            algorithm=alg.alternating(mmufp_method="best"), rate_matrix=matrix
        )

    print(f"\n{'policy':<18}{'total cost':>16}{'mean cong.':>12}{'worst cong.':>13}")
    print("-" * 59)
    for name, kwargs in policies.items():
        result = run_online(
            config,
            kwargs["algorithm"],
            name=name,
            hours=HOURS,
            rate_matrix=kwargs.get("rate_matrix"),
            trace=trace,
            trace_config=trace_config,
        )
        print(
            f"{name:<18}{result.total_cost:>16,.0f}"
            f"{result.mean_congestion:>12.3f}{result.worst_congestion:>13.3f}"
        )
    print(
        "\nHourly re-optimization tracks the moving demand; the static"
        " solution slowly drifts off the optimum as popularity shifts."
    )


if __name__ == "__main__":
    main(with_gpr="--gpr" in sys.argv)
