"""Tests for the reactive (LRU/LFU) on-path caching baseline."""

import numpy as np
import pytest

from repro.baselines import EvictingCache, simulate_reactive_caching
from repro.core import routing_cost
from repro.core.algorithm1 import algorithm1
from repro.exceptions import InvalidProblemError

from tests.core.conftest import make_line_problem


class TestEvictingCache:
    def test_insert_and_contains(self):
        cache = EvictingCache(2.0)
        assert cache.insert("a", 1.0)
        assert "a" in cache
        assert cache.used == 1.0

    def test_lru_evicts_oldest(self):
        cache = EvictingCache(2.0, "lru")
        cache.insert("a", 1.0)
        cache.insert("b", 1.0)
        cache.touch("a")  # refresh a; b becomes LRU
        cache.insert("c", 1.0)
        assert "b" not in cache
        assert "a" in cache and "c" in cache

    def test_lfu_evicts_least_frequent(self):
        cache = EvictingCache(2.0, "lfu")
        cache.insert("a", 1.0)
        cache.touch("a")
        cache.touch("a")
        cache.insert("b", 1.0)
        cache.insert("c", 1.0)
        assert "a" in cache  # most hits survive
        assert "b" not in cache

    def test_oversized_item_rejected(self):
        cache = EvictingCache(1.0)
        assert not cache.insert("huge", 5.0)
        assert cache.used == 0.0

    def test_reinsert_is_touch(self):
        cache = EvictingCache(2.0)
        cache.insert("a", 1.0)
        assert cache.insert("a", 1.0)
        assert cache.used == 1.0

    def test_heterogeneous_eviction_until_fit(self):
        cache = EvictingCache(4.0)
        cache.insert("a", 2.0)
        cache.insert("b", 2.0)
        cache.insert("big", 3.0)
        assert "big" in cache
        assert cache.used <= 4.0

    def test_invalid_policy(self):
        with pytest.raises(InvalidProblemError):
            EvictingCache(1.0, "fifo")

    def test_negative_capacity(self):
        with pytest.raises(InvalidProblemError):
            EvictingCache(-1.0)


class TestReactiveSimulation:
    def test_zero_capacity_everything_from_origin(self):
        prob = make_line_problem()
        result = simulate_reactive_caching(
            prob, n_requests=2000, rng=np.random.default_rng(0)
        )
        assert result.edge_hit_ratio == 0.0
        # Everything travels the full 4-hop path: cost rate = 6 * 4.
        assert result.cost_rate == pytest.approx(24.0, rel=0.05)

    def test_cache_reduces_cost(self):
        prob = make_line_problem(cache_nodes={3: 2, 4: 2})
        result = simulate_reactive_caching(
            prob, n_requests=4000, rng=np.random.default_rng(1)
        )
        assert result.edge_hit_ratio > 0.5
        assert result.cost_rate < 24.0

    def test_lfu_option(self):
        prob = make_line_problem(cache_nodes={3: 1})
        result = simulate_reactive_caching(
            prob, policy="lfu", n_requests=2000, rng=np.random.default_rng(2)
        )
        assert result.policy == "lfu"
        assert result.requests > 0

    def test_invalid_requests(self):
        with pytest.raises(InvalidProblemError):
            simulate_reactive_caching(make_line_problem(), n_requests=0)

    def test_optimized_placement_beats_reactive_lru(self):
        """The paper's motivation: optimization beats reactive caching when
        caches are scarce and demand is known."""
        prob = make_line_problem(
            cache_nodes={3: 1},
            demand={("item0", 4): 8.0, ("item1", 4): 1.0},
        )
        reactive = simulate_reactive_caching(
            prob, n_requests=4000, rng=np.random.default_rng(3)
        )
        optimized = routing_cost(prob, algorithm1(prob).solution.routing)
        # LRU keeps whichever item arrived last; the optimizer pins the
        # popular one. Reactive pays strictly more on average.
        assert optimized < reactive.cost_rate

    def test_deterministic_under_seed(self):
        prob = make_line_problem(cache_nodes={3: 1})
        a = simulate_reactive_caching(prob, n_requests=500, rng=np.random.default_rng(7))
        b = simulate_reactive_caching(prob, n_requests=500, rng=np.random.default_rng(7))
        assert a.cost_rate == pytest.approx(b.cost_rate)


class TestEvictingCacheAccounting:
    """Satellite regressions: resident re-insert sizes and LFU ordering."""

    def test_reinsert_with_larger_size_updates_used(self):
        cache = EvictingCache(3.0)
        cache.insert("a", 1.0)
        cache.insert("b", 1.0)
        assert cache.insert("a", 2.0)
        assert cache.used == pytest.approx(3.0)
        assert "a" in cache and "b" in cache

    def test_reinsert_with_smaller_size_updates_used(self):
        cache = EvictingCache(3.0)
        cache.insert("a", 2.0)
        assert cache.insert("a", 1.0)
        assert cache.used == pytest.approx(1.0)

    def test_reinsert_growth_evicts_others_not_itself(self):
        cache = EvictingCache(3.0)
        cache.insert("a", 1.0)
        cache.insert("b", 1.0)
        cache.insert("c", 1.0)
        assert cache.insert("a", 3.0)
        assert cache.items() == {"a"}
        assert cache.used == pytest.approx(3.0)

    def test_reinsert_beyond_capacity_drops_item(self):
        cache = EvictingCache(2.0)
        cache.insert("a", 1.0)
        assert not cache.insert("a", 5.0)
        assert "a" not in cache
        assert cache.used == pytest.approx(0.0)

    def test_lfu_ties_break_by_lru_order(self):
        cache = EvictingCache(2.0, "lfu")
        cache.insert("a", 1.0)
        cache.insert("b", 1.0)
        cache.touch("a")  # both at 2 hits after touching b too ...
        cache.touch("b")
        # Frequencies tie at 2; "a" is the least recently used of the pair.
        cache.insert("c", 1.0)
        assert "a" not in cache
        assert "b" in cache and "c" in cache

    def test_lfu_eviction_order_is_ascending_frequency(self):
        cache = EvictingCache(3.0, "lfu")
        cache.insert("a", 1.0)  # 1 hit
        cache.insert("b", 1.0)
        cache.touch("b")
        cache.touch("b")  # 3 hits
        cache.insert("c", 1.0)
        cache.touch("c")  # 2 hits
        cache.insert("big", 2.0)  # needs 2 evictions: a (1) then c (2)
        assert "a" not in cache and "c" not in cache
        assert "b" in cache and "big" in cache


def make_asymmetric_triangle(*, cache_at_mid: float = 0.0) -> "ProblemInstance":
    """Triangle where the s->origin shortest path differs from the reversed
    origin->s shortest path AND request-direction costs differ from
    response-direction costs: 2 -> 1 -> 0 costs 2, while the origin's
    response 0 -> 2 travels the direct (cheap) edge of cost 1."""
    import networkx as nx

    from repro.core import ProblemInstance, pin_full_catalog
    from repro.graph import CacheNetwork

    g = nx.DiGraph()
    edges = {
        (2, 0): 10.0,
        (0, 2): 1.0,
        (2, 1): 1.0,
        (1, 0): 1.0,
        (0, 1): 10.0,
        (1, 2): 10.0,
    }
    for (u, v), cost in edges.items():
        g.add_edge(u, v, cost=cost, capacity=float("inf"))
    net = CacheNetwork(g)
    if cache_at_mid:
        net.set_cache_capacity(1, cache_at_mid)
    catalog = ("item0",)
    return ProblemInstance(
        network=net,
        catalog=catalog,
        demand={("item0", 2): 4.0},
        pinned=pin_full_catalog(catalog, [0]),
    )


class TestAsymmetricCosts:
    """Satellite regression: request path and costs on asymmetric networks."""

    def test_charges_request_direction_costs_on_request_path(self):
        prob = make_asymmetric_triangle()
        result = simulate_reactive_caching(
            prob, n_requests=500, rng=np.random.default_rng(0)
        )
        # No caches: every request pays dist(2 -> 0) = 2 (via node 1).  The
        # old code reversed the origin->s path ([0, 2], cost 1 response /
        # 10 request direction) and charged response-direction costs.
        assert result.cost_rate == pytest.approx(4.0 * 2.0)
        assert result.edge_hit_ratio == 0.0

    def test_on_path_cache_sits_on_request_path(self):
        prob = make_asymmetric_triangle(cache_at_mid=1.0)
        result = simulate_reactive_caching(
            prob, n_requests=2000, rng=np.random.default_rng(1)
        )
        # Node 1 lies on the request path 2 -> 1 -> 0; after the first miss
        # the item is cached there and requests pay only cost(2, 1) = 1.
        assert result.edge_hit_ratio > 0.9
        assert result.cost_rate == pytest.approx(4.0 * 1.0, rel=0.05)
