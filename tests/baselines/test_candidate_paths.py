"""Tests for the [3] / [38] candidate-path benchmarks."""

import numpy as np
import pytest

from repro.baselines import (
    CandidatePathModel,
    candidate_path_baseline,
    naive_equal_swap_round,
    origin_server,
    shortest_path_baseline,
)
from repro.core import (
    ProblemInstance,
    algorithm1,
    max_cache_occupancy,
    pin_full_catalog,
    routing_cost,
)
from repro.exceptions import InvalidProblemError
from repro.graph import abovenet, edge_caching_roles

from tests.core.conftest import make_line_problem


def abovenet_problem(seed=0, catalog_size=20, cache=4, hetero=False):
    net = abovenet()
    rng = np.random.default_rng(seed)
    origin, edge_nodes = edge_caching_roles(net)
    for (u, v) in net.edges:
        w = rng.uniform(100, 200) if origin in (u, v) else rng.uniform(1, 20)
        net.graph.edges[u, v]["cost"] = float(w)
    catalog = tuple(f"c{i}" for i in range(catalog_size))
    demand = {}
    for i, item in enumerate(catalog):
        for s in edge_nodes:
            if rng.random() < 0.6:
                demand[(item, s)] = float(rng.uniform(1, 10) / (1 + i / 4))
    sizes = None
    if hetero:
        sizes = {item: float(rng.uniform(1.0, 4.0)) for item in catalog}
    for v in edge_nodes:
        net.set_cache_capacity(v, cache * (2.5 if hetero else 1))
    return ProblemInstance(
        net, catalog, demand, item_sizes=sizes,
        pinned=pin_full_catalog(catalog, [origin]),
    )


class TestOriginServer:
    def test_finds_pinned_origin(self):
        prob = make_line_problem()
        assert origin_server(prob) == 0

    def test_no_origin_raises(self):
        prob = make_line_problem()
        prob = ProblemInstance(
            network=prob.network, catalog=prob.catalog,
            demand=prob.demand, pinned=frozenset(),
        )
        with pytest.raises(InvalidProblemError):
            origin_server(prob)


class TestCandidatePathModel:
    def test_paths_start_at_server_end_at_requester(self):
        prob = abovenet_problem()
        model = CandidatePathModel.build(prob, 5)
        for s, paths in model.paths.items():
            for p in paths:
                assert p[0] == model.server
                assert p[-1] == s

    def test_requester_suffix_is_zero_cost(self):
        prob = abovenet_problem()
        model = CandidatePathModel.build(prob, 3)
        for (_i, s) in prob.demand:
            cost, suffix = model.serving[(s, s)]
            assert cost == 0.0
            assert suffix == (s,)

    def test_k_one_single_path(self):
        prob = abovenet_problem()
        model = CandidatePathModel.build(prob, 1)
        assert all(len(paths) == 1 for paths in model.paths.values())

    def test_invalid_k(self):
        with pytest.raises(InvalidProblemError):
            CandidatePathModel.build(abovenet_problem(), 0)

    def test_more_candidates_never_raise_serving_cost(self):
        prob = abovenet_problem()
        m1 = CandidatePathModel.build(prob, 1)
        m5 = CandidatePathModel.build(prob, 5)
        for key, (cost1, _p) in m1.serving.items():
            cost5, _ = m5.serving[key]
            assert cost5 <= cost1 + 1e-9


class TestNaiveEqualSwapRound:
    def test_homogeneous_behaves_like_pipage(self):
        out = naive_equal_swap_round(
            {(1, "a"): 0.5, (1, "b"): 0.5},
            {(1, "a"): 2.0, (1, "b"): 1.0},
        )
        assert out == {(1, "a"): 1.0}

    def test_can_overfill_with_sizes(self):
        """The equal-fraction swap ignores sizes: 0.5*big + 0.5*small can
        round to both items, exceeding the capacity that held the fractions."""
        out = naive_equal_swap_round(
            {(1, "big"): 0.6, (1, "small"): 0.9},
            {(1, "big"): 2.0, (1, "small"): 1.0},
        )
        # Total mass 1.5 -> both items end up cached.
        assert out == {(1, "big"): 1.0, (1, "small"): 1.0}


class TestBaselinesOnAbovenet:
    def test_all_solutions_serve_all_requests(self):
        prob = abovenet_problem()
        for sol in (
            shortest_path_baseline(prob),
            candidate_path_baseline(prob, k=1),
            candidate_path_baseline(prob, k=5),
        ):
            for request in prob.demand:
                assert sol.routing.served_fraction(request) == pytest.approx(1.0)

    def test_homogeneous_placements_feasible(self):
        prob = abovenet_problem()
        for sol in (
            shortest_path_baseline(prob),
            candidate_path_baseline(prob, k=5),
        ):
            assert max_cache_occupancy(prob, sol.placement) <= 1 + 1e-6

    def test_more_candidate_paths_reduce_cost(self):
        prob = abovenet_problem()
        c1 = routing_cost(prob, candidate_path_baseline(prob, k=1).routing)
        c10 = routing_cost(prob, candidate_path_baseline(prob, k=10).routing)
        assert c10 <= c1 + 1e-6

    def test_algorithm1_beats_benchmarks(self):
        """The headline Fig. 5 shape: Alg 1 < k-SP [3] and < SP [38]."""
        prob = abovenet_problem(catalog_size=30, cache=6)
        ours = routing_cost(prob, algorithm1(prob).solution.routing)
        sp = routing_cost(prob, shortest_path_baseline(prob).routing)
        ksp = routing_cost(prob, candidate_path_baseline(prob, k=10).routing)
        assert ours < sp
        assert ours < ksp

    def test_hetero_benchmark_placement_overfills_cache(self):
        """Fig. 5 file level: the benchmarks' placements are infeasible."""
        prob = abovenet_problem(hetero=True, seed=2)
        sol = candidate_path_baseline(prob, k=5)
        assert max_cache_occupancy(prob, sol.placement) > 1.0

    def test_line_topology_sp_equals_candidate_k1_cost(self):
        """On a line there is a single path, so both benchmarks coincide
        in routing cost (placements may differ by ties)."""
        prob = make_line_problem(cache_nodes={3: 1})
        sp = shortest_path_baseline(prob)
        k1 = candidate_path_baseline(prob, k=1)
        assert routing_cost(prob, sp.routing) == pytest.approx(
            routing_cost(prob, k1.routing)
        )
