"""Tiered distance backends: bit-parity, laziness, stores, memory guard."""

import numpy as np
import pytest

from repro.exceptions import ResourceError
from repro.graph import (
    DenseBackend,
    DistanceBackend,
    LazyRowBackend,
    RowStore,
    abovenet,
    abvt,
    build_distance_matrix,
    deltacom,
    estimate_dense_bytes,
    line_topology,
    random_topology,
    tinet,
    tree_topology,
)

TOPOLOGIES = [abovenet, abvt, tinet, deltacom, lambda: line_topology(7),
              lambda: tree_topology(2, 3), lambda: random_topology(40, seed=3)]


def backends_for(net):
    graph = net.graph
    dense = DenseBackend(build_distance_matrix(graph))
    lazy = LazyRowBackend(graph)
    return dense, lazy


class TestBitParity:
    @pytest.mark.parametrize("factory", TOPOLOGIES)
    def test_rows_bit_identical(self, factory):
        dense, lazy = backends_for(factory())
        n = len(dense.nodes)
        assert lazy.nodes == dense.nodes
        for i in range(n):
            d, l = dense.row(i), lazy.row(i)
            # bitwise equality, not approx: same CSR, same Dijkstra
            assert np.array_equal(d, l), f"row {i} differs"
            assert d.tobytes() == l.tobytes()

    @pytest.mark.parametrize("factory", TOPOLOGIES)
    def test_reductions_bit_identical(self, factory):
        dense, lazy = backends_for(factory())
        n = len(dense.nodes)
        idx = np.arange(0, n, 2, dtype=np.intp)
        assert dense.finite_max_rows(idx) == lazy.finite_max_rows(idx)
        assert dense.w_max() == lazy.w_max()

    def test_distance_and_stacked_rows(self):
        dense, lazy = backends_for(tinet())
        idx = np.asarray([4, 0, 17], dtype=np.intp)
        assert np.array_equal(dense.rows(idx), lazy.rows(idx))
        assert dense.distance(3, 40) == lazy.distance(3, 40)

    def test_python_fallback_matches_scipy(self):
        net = abvt()
        scipy_rows = LazyRowBackend(net.graph, use_scipy=True)
        py_rows = LazyRowBackend(net.graph, use_scipy=False)
        for i in range(len(scipy_rows)):
            assert np.allclose(scipy_rows.row(i), py_rows.row(i))

    def test_protocol_conformance(self):
        dense, lazy = backends_for(abvt())
        assert isinstance(dense, DistanceBackend)
        assert isinstance(lazy, DistanceBackend)


class TestLaziness:
    def test_only_consulted_rows_materialize(self):
        lazy = LazyRowBackend(deltacom().graph)
        assert lazy.materialized == 0
        lazy.row(5)
        lazy.rows(np.asarray([5, 9, 11], dtype=np.intp))
        assert lazy.materialized == 3

    def test_wmax_does_not_retain_rows(self):
        net = tinet()
        lazy = LazyRowBackend(net.graph)
        lazy.row(2)
        w = lazy.w_max()
        assert lazy.materialized == 1  # sweep streamed, nothing retained
        assert w == DenseBackend(build_distance_matrix(net.graph)).dm.w_max()

    def test_rows_are_read_only(self):
        lazy = LazyRowBackend(abvt().graph)
        row = lazy.row(0)
        with pytest.raises((ValueError, RuntimeError)):
            row[0] = 99.0


class TestRowStore:
    def test_round_trip_through_store(self):
        net = tinet()
        lazy = LazyRowBackend(net.graph)
        lazy.ensure_rows([1, 8, 30])
        store = lazy.row_store()
        assert len(store) == 3
        reloaded = LazyRowBackend(net.graph, store=store)
        assert reloaded.materialized == 3
        for i in (1, 8, 30):
            assert np.array_equal(reloaded.row(i), lazy.row(i))
        # rows outside the store still compute on demand
        assert np.array_equal(reloaded.row(4), lazy.row(4))

    def test_store_shape_validated(self):
        with pytest.raises(ValueError):
            RowStore(np.asarray([0, 1]), np.zeros((3, 5)))
        with pytest.raises(ValueError):
            LazyRowBackend(
                abvt().graph,
                store=RowStore(np.asarray([0]), np.zeros((1, 4))),
            )


class TestMemoryGuard:
    def test_estimate_counts_matrix_and_adjacency(self):
        assert estimate_dense_bytes(1000) == 2 * 8 * 1000 * 1000

    def test_build_raises_over_explicit_ceiling(self):
        net = deltacom()
        needed = estimate_dense_bytes(net.num_nodes)
        with pytest.raises(ResourceError) as err:
            build_distance_matrix(net.graph, max_bytes=needed - 1)
        msg = str(err.value)
        assert f"{needed:,}" in msg or str(needed) in msg
        assert "LazyRowBackend" in msg

    def test_build_respects_env_ceiling(self, monkeypatch):
        monkeypatch.setenv("REPRO_DENSE_MAX_BYTES", "1024")
        with pytest.raises(ResourceError):
            build_distance_matrix(deltacom().graph)

    def test_build_passes_under_ceiling(self):
        net = abvt()
        dm = build_distance_matrix(
            net.graph, max_bytes=estimate_dense_bytes(net.num_nodes)
        )
        assert dm.matrix.shape == (23, 23)
