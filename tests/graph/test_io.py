"""Tests for topology I/O (GraphML, edge lists, JSON manifests)."""

import math

import networkx as nx
import pytest

from repro.exceptions import InvalidNetworkError
from repro.graph import abovenet
from repro.graph.io import (
    load_edge_list,
    load_graphml,
    load_network_json,
    save_edge_list,
    save_network_json,
)


class TestGraphML:
    def _write_graphml(self, tmp_path, directed=False):
        g = nx.DiGraph() if directed else nx.Graph()
        g.add_edge("a", "b", weight=2.5, bw=10.0)
        g.add_edge("b", "c", weight=1.0, bw=5.0)
        path = tmp_path / "topo.graphml"
        nx.write_graphml(g, path)
        return path

    def test_load_with_attribute_mapping(self, tmp_path):
        path = self._write_graphml(tmp_path)
        net = load_graphml(path, cost_key="weight", capacity_key="bw")
        assert net.cost("a", "b") == 2.5
        assert net.capacity("b", "c") == 5.0
        assert net.has_edge("b", "a")  # symmetric

    def test_load_with_defaults(self, tmp_path):
        path = self._write_graphml(tmp_path)
        net = load_graphml(path)
        assert net.cost("a", "b") == 1.0
        assert math.isinf(net.capacity("a", "b"))

    def test_missing_file(self, tmp_path):
        with pytest.raises(InvalidNetworkError):
            load_graphml(tmp_path / "missing.graphml")

    def test_unparseable_file(self, tmp_path):
        bad = tmp_path / "bad.graphml"
        bad.write_text("this is not xml")
        with pytest.raises(InvalidNetworkError):
            load_graphml(bad)


class TestEdgeList:
    def test_round_trip(self, tmp_path):
        net = abovenet()
        net.set_uniform_link_capacity(42.0)
        path = tmp_path / "abovenet.edges"
        save_edge_list(net, path)
        loaded = load_edge_list(path, symmetric=False)
        assert set(loaded.edges) == set(net.edges)
        assert loaded.capacity("SEA", "SJC") == 42.0

    def test_infinite_capacity_round_trip(self, tmp_path):
        net = abovenet()
        path = tmp_path / "abovenet.edges"
        save_edge_list(net, path)
        loaded = load_edge_list(path, symmetric=False)
        assert math.isinf(loaded.capacity("SEA", "SJC"))

    def test_comments_and_blank_lines(self, tmp_path):
        path = tmp_path / "topo.txt"
        path.write_text("# comment\n\na b 2.0 7.0\n")
        net = load_edge_list(path)
        assert net.cost("a", "b") == 2.0
        assert net.capacity("b", "a") == 7.0  # symmetric default

    def test_malformed_line(self, tmp_path):
        path = tmp_path / "topo.txt"
        path.write_text("a b\n")
        with pytest.raises(InvalidNetworkError):
            load_edge_list(path)

    def test_bad_number(self, tmp_path):
        path = tmp_path / "topo.txt"
        path.write_text("a b notanumber\n")
        with pytest.raises(InvalidNetworkError):
            load_edge_list(path)

    def test_missing_file(self, tmp_path):
        with pytest.raises(InvalidNetworkError):
            load_edge_list(tmp_path / "nope.txt")


class TestJSONManifest:
    def test_round_trip_with_caches(self, tmp_path):
        net = abovenet()
        net.set_cache_capacity("SEA", 12)
        net.set_link_capacity("SEA", "SJC", 3.5)
        path = tmp_path / "net.json"
        save_network_json(net, path)
        loaded = load_network_json(path)
        assert loaded.cache_capacity("SEA") == 12
        assert loaded.capacity("SEA", "SJC") == 3.5
        assert math.isinf(loaded.capacity("SJC", "SFO"))
        assert loaded.num_edges == net.num_edges

    def test_missing_file(self, tmp_path):
        with pytest.raises(InvalidNetworkError):
            load_network_json(tmp_path / "nope.json")
