"""Tests for Dijkstra, all-pairs costs and Yen's k-shortest paths."""

import networkx as nx
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.exceptions import InvalidNetworkError
from repro.graph import (
    abovenet,
    all_pairs_least_costs,
    k_shortest_paths,
    path_cost,
    reconstruct_path,
    single_source_dijkstra,
)


def diamond() -> nx.DiGraph:
    g = nx.DiGraph()
    g.add_edge("s", "a", cost=1.0)
    g.add_edge("s", "b", cost=4.0)
    g.add_edge("a", "t", cost=1.0)
    g.add_edge("b", "t", cost=1.0)
    g.add_edge("a", "b", cost=1.0)
    return g


class TestDijkstra:
    def test_distances_on_diamond(self):
        dist, _ = single_source_dijkstra(diamond(), "s")
        assert dist == {"s": 0.0, "a": 1.0, "b": 2.0, "t": 2.0}

    def test_reconstruct_path(self):
        dist, pred = single_source_dijkstra(diamond(), "s")
        assert reconstruct_path(pred, "s", "t") == ["s", "a", "t"]
        assert reconstruct_path(pred, "s", "s") == ["s"]

    def test_unreachable_node_missing_from_dist(self):
        g = diamond()
        g.add_node("island")
        dist, pred = single_source_dijkstra(g, "s")
        assert "island" not in dist
        with pytest.raises(InvalidNetworkError):
            reconstruct_path(pred, "s", "island")

    def test_unknown_source_raises(self):
        with pytest.raises(InvalidNetworkError):
            single_source_dijkstra(diamond(), "zz")

    def test_negative_weight_raises(self):
        g = nx.DiGraph()
        g.add_edge(1, 2, cost=-1.0)
        with pytest.raises(InvalidNetworkError):
            single_source_dijkstra(g, 1)

    @settings(max_examples=30, deadline=None)
    @given(st.integers(min_value=0, max_value=10_000))
    def test_matches_networkx_on_random_graphs(self, seed):
        g = nx.gnp_random_graph(12, 0.3, seed=seed, directed=True)
        for u, v in g.edges:
            g.edges[u, v]["cost"] = ((u * 7 + v * 13 + seed) % 19) + 1.0
        dist, _ = single_source_dijkstra(g, 0)
        expected = nx.single_source_dijkstra_path_length(g, 0, weight="cost")
        assert dist == pytest.approx(expected)


class TestAllPairs:
    def test_wmax_is_max_finite_cost(self):
        costs, wmax = all_pairs_least_costs(diamond())
        assert costs["s"]["t"] == 2.0
        # Largest finite pairwise least cost: s->b = min(4, 1+1) = 2.
        assert wmax == 2.0

    def test_single_node_graph_wmax_defaults_to_one(self):
        g = nx.DiGraph()
        g.add_node("x")
        costs, wmax = all_pairs_least_costs(g)
        assert costs == {"x": {"x": 0.0}}
        assert wmax == 1.0

    def test_abovenet_symmetric_costs(self):
        net = abovenet()
        costs, _ = all_pairs_least_costs(net.graph)
        # Unit symmetric costs: distance is symmetric.
        assert costs["SEA"]["MIA"] == costs["MIA"]["SEA"]


class TestPathCost:
    def test_simple_sum(self):
        assert path_cost(diamond(), ["s", "a", "t"]) == 2.0

    def test_missing_link_raises(self):
        with pytest.raises(InvalidNetworkError):
            path_cost(diamond(), ["s", "t"])


class TestKShortestPaths:
    def test_first_path_is_shortest(self):
        paths = k_shortest_paths(diamond(), "s", "t", 3)
        assert paths[0] == ["s", "a", "t"]

    def test_costs_nondecreasing(self):
        g = diamond()
        paths = k_shortest_paths(g, "s", "t", 4)
        costs = [path_cost(g, p) for p in paths]
        assert costs == sorted(costs)

    def test_paths_are_loopless_and_distinct(self):
        g = abovenet().graph
        paths = k_shortest_paths(g, "LON", "SEA", 8)
        assert len({tuple(p) for p in paths}) == len(paths)
        for p in paths:
            assert len(set(p)) == len(p)

    def test_returns_fewer_when_graph_small(self):
        g = nx.DiGraph()
        g.add_edge("s", "t", cost=1.0)
        assert k_shortest_paths(g, "s", "t", 5) == [["s", "t"]]

    def test_no_path_returns_empty(self):
        g = nx.DiGraph()
        g.add_node("s")
        g.add_node("t")
        assert k_shortest_paths(g, "s", "t", 3) == []

    def test_k_zero_returns_empty(self):
        assert k_shortest_paths(diamond(), "s", "t", 0) == []

    def test_graph_restored_after_run(self):
        g = diamond()
        before = set(g.edges)
        k_shortest_paths(g, "s", "t", 4)
        assert set(g.edges) == before

    def test_insertion_order_preserved(self):
        # Regression: Yen's spur loop used to remove and re-add nodes/edges
        # on the caller's graph, permanently permuting iteration order and
        # silently changing every downstream order-dependent computation.
        g = diamond()
        nodes_before = list(g.nodes)
        edges_before = list(g.edges)
        data_before = {e: dict(g.edges[e]) for e in g.edges}
        k_shortest_paths(g, "s", "t", 4)
        assert list(g.nodes) == nodes_before
        assert list(g.edges) == edges_before
        assert {e: dict(g.edges[e]) for e in g.edges} == data_before

    def test_insertion_order_preserved_on_larger_graph(self):
        g = abovenet().graph
        nodes_before = list(g.nodes)
        edges_before = list(g.edges)
        k_shortest_paths(g, "LON", "SEA", 6)
        assert list(g.nodes) == nodes_before
        assert list(g.edges) == edges_before

    @settings(max_examples=20, deadline=None)
    @given(st.integers(min_value=0, max_value=5_000))
    def test_matches_networkx_shortest_simple_paths(self, seed):
        g = nx.gnp_random_graph(8, 0.4, seed=seed, directed=True)
        for u, v in g.edges:
            g.edges[u, v]["cost"] = ((u * 3 + v * 11 + seed) % 7) + 1.0
        try:
            expected = list(nx.shortest_simple_paths(g, 0, 7, weight="cost"))[:4]
        except nx.NetworkXNoPath:
            expected = []
        got = k_shortest_paths(g, 0, 7, 4) if 0 in g and 7 in g else []
        assert [path_cost(g, p) for p in got] == pytest.approx(
            [path_cost(g, p) for p in expected]
        )
