"""Unit tests for the CacheNetwork model."""

import math

import networkx as nx
import pytest

from repro.exceptions import InvalidNetworkError
from repro.graph import CacheNetwork


def small_net() -> CacheNetwork:
    return CacheNetwork.from_edges(
        [("a", "b", 1.0, 5.0), ("b", "c", 2.0, 7.0)],
        cache_capacity={"a": 2, "c": 1},
    )


class TestConstruction:
    def test_from_edges_sets_costs_and_capacities(self):
        net = small_net()
        assert net.cost("a", "b") == 1.0
        assert net.capacity("b", "c") == 7.0

    def test_from_edges_default_capacity_is_infinite(self):
        net = CacheNetwork.from_edges([("a", "b", 3.0)])
        assert math.isinf(net.capacity("a", "b"))

    def test_symmetric_adds_reverse_links(self):
        net = CacheNetwork.from_edges([("a", "b", 3.0, 4.0)], symmetric=True)
        assert net.cost("b", "a") == 3.0
        assert net.capacity("b", "a") == 4.0

    def test_missing_attributes_get_defaults(self):
        g = nx.DiGraph()
        g.add_edge(1, 2)
        net = CacheNetwork(g)
        assert net.cost(1, 2) == 1.0
        assert math.isinf(net.capacity(1, 2))

    def test_nodes_without_cache_entry_get_zero(self):
        net = small_net()
        assert net.cache_capacity("b") == 0.0

    def test_negative_cost_rejected(self):
        g = nx.DiGraph()
        g.add_edge(1, 2, cost=-1.0)
        with pytest.raises(InvalidNetworkError):
            CacheNetwork(g)

    def test_nonpositive_link_capacity_rejected(self):
        g = nx.DiGraph()
        g.add_edge(1, 2, cost=1.0, capacity=0.0)
        with pytest.raises(InvalidNetworkError):
            CacheNetwork(g)

    def test_negative_cache_capacity_rejected(self):
        g = nx.DiGraph()
        g.add_edge(1, 2)
        with pytest.raises(InvalidNetworkError):
            CacheNetwork(g, {1: -1})

    def test_cache_on_unknown_node_rejected(self):
        g = nx.DiGraph()
        g.add_edge(1, 2)
        with pytest.raises(InvalidNetworkError):
            CacheNetwork(g, {99: 1})

    def test_multigraph_rejected(self):
        with pytest.raises(InvalidNetworkError):
            CacheNetwork(nx.MultiDiGraph())


class TestAccessors:
    def test_cache_nodes_lists_only_positive(self):
        net = small_net()
        assert set(net.cache_nodes()) == {"a", "c"}

    def test_costs_and_capacities_maps(self):
        net = small_net()
        assert net.costs() == {("a", "b"): 1.0, ("b", "c"): 2.0}
        assert net.capacities() == {("a", "b"): 5.0, ("b", "c"): 7.0}

    def test_degree_counts_directed_edges(self):
        net = CacheNetwork.from_edges([("a", "b", 1.0)], symmetric=True)
        assert net.degree("a") == 2
        assert net.undirected_degree("a") == 1

    def test_len_and_contains(self):
        net = small_net()
        assert len(net) == 3
        assert "a" in net
        assert "zz" not in net

    def test_repr_mentions_sizes(self):
        assert "|V|=3" in repr(small_net())


class TestMutators:
    def test_set_cache_capacity(self):
        net = small_net()
        net.set_cache_capacity("b", 4)
        assert net.cache_capacity("b") == 4.0

    def test_set_cache_capacity_unknown_node(self):
        with pytest.raises(InvalidNetworkError):
            small_net().set_cache_capacity("zz", 1)

    def test_set_uniform_link_capacity(self):
        net = small_net()
        net.set_uniform_link_capacity(9.0)
        assert all(c == 9.0 for c in net.capacities().values())

    def test_uncapacitated_copy_does_not_mutate_original(self):
        net = small_net()
        free = net.uncapacitated()
        assert math.isinf(free.capacity("a", "b"))
        assert net.capacity("a", "b") == 5.0

    def test_augment_capacity_along_path(self):
        net = small_net()
        net.augment_capacity_along_path(["a", "b", "c"], 3.0)
        assert net.capacity("a", "b") == 8.0
        assert net.capacity("b", "c") == 10.0

    def test_augment_negative_rejected(self):
        with pytest.raises(InvalidNetworkError):
            small_net().augment_capacity_along_path(["a", "b"], -1.0)

    def test_copy_is_independent(self):
        net = small_net()
        dup = net.copy()
        dup.set_cache_capacity("a", 99)
        dup.set_link_capacity("a", "b", 123.0)
        assert net.cache_capacity("a") == 2.0
        assert net.capacity("a", "b") == 5.0
