"""Tests for the dense all-pairs distance matrix behind SolverContext."""

import math

import networkx as nx
import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.exceptions import InvalidNetworkError
from repro.graph import abovenet, all_pairs_least_costs, build_distance_matrix
from repro.graph.distance_matrix import HAVE_SCIPY


def diamond() -> nx.DiGraph:
    g = nx.DiGraph()
    g.add_edge("s", "a", cost=1.0)
    g.add_edge("s", "b", cost=4.0)
    g.add_edge("a", "t", cost=1.0)
    g.add_edge("b", "t", cost=1.0)
    g.add_edge("a", "b", cost=1.0)
    return g


class TestBuild:
    def test_matches_dict_all_pairs_on_diamond(self):
        g = diamond()
        dm = build_distance_matrix(g)
        costs, wmax = all_pairs_least_costs(g)
        for u in g.nodes:
            for v in g.nodes:
                assert dm.distance(u, v) == pytest.approx(
                    costs[u].get(v, math.inf)
                )
        assert dm.w_max() == pytest.approx(wmax)

    def test_unreachable_pairs_are_inf(self):
        g = diamond()
        g.add_node("island")
        dm = build_distance_matrix(g)
        assert dm.distance("s", "island") == math.inf
        assert dm.distance("island", "s") == math.inf
        assert dm.distance("island", "island") == 0.0

    def test_diagonal_is_zero(self):
        dm = build_distance_matrix(diamond())
        assert np.all(np.diag(dm.matrix) == 0.0)

    def test_zero_cost_edges_survive(self):
        # A zero-weight edge must count as an edge, not as "no edge"
        # (the classic scipy csr_matrix pitfall).
        g = nx.DiGraph()
        g.add_edge("a", "b", cost=0.0)
        g.add_edge("b", "c", cost=3.0)
        dm = build_distance_matrix(g)
        assert dm.distance("a", "b") == 0.0
        assert dm.distance("a", "c") == 3.0

    def test_parallel_duplicate_edges_keep_minimum(self):
        g = nx.DiGraph()
        g.add_edge("a", "b", cost=5.0)
        g.add_edge("a", "b", cost=2.0)  # overwrites in DiGraph
        dm = build_distance_matrix(g)
        assert dm.distance("a", "b") == 2.0

    def test_negative_weight_raises(self):
        g = nx.DiGraph()
        g.add_edge(1, 2, cost=-1.0)
        with pytest.raises(InvalidNetworkError):
            build_distance_matrix(g)

    def test_matrix_is_read_only(self):
        dm = build_distance_matrix(diamond())
        with pytest.raises(ValueError):
            dm.matrix[0, 0] = 99.0

    @settings(max_examples=25, deadline=None)
    @given(st.integers(min_value=0, max_value=10_000))
    def test_matches_dict_on_random_graphs(self, seed):
        g = nx.gnp_random_graph(10, 0.3, seed=seed, directed=True)
        for u, v in g.edges:
            g.edges[u, v]["cost"] = ((u * 7 + v * 13 + seed) % 19) + 1.0
        dm = build_distance_matrix(g)
        costs, wmax = all_pairs_least_costs(g)
        for u in g.nodes:
            row = costs[u]
            for v in g.nodes:
                assert dm.distance(u, v) == pytest.approx(
                    row.get(v, math.inf)
                )
        assert dm.w_max() == pytest.approx(wmax)

    @pytest.mark.skipif(not HAVE_SCIPY, reason="scipy unavailable")
    def test_scipy_and_python_paths_agree(self):
        g = abovenet().graph
        fast = build_distance_matrix(g, use_scipy=True)
        slow = build_distance_matrix(g, use_scipy=False)
        assert fast.nodes == slow.nodes
        np.testing.assert_allclose(fast.matrix, slow.matrix)


class TestAccessors:
    def test_row_and_column_slices(self):
        g = diamond()
        dm = build_distance_matrix(g)
        row = dm.row("s")
        col = dm.column("t")
        for v in g.nodes:
            assert row[dm.index[v]] == dm.distance("s", v)
            assert col[dm.index[v]] == dm.distance(v, "t")

    def test_to_dict_matches_all_pairs_shape(self):
        g = diamond()
        dm = build_distance_matrix(g)
        costs, _ = all_pairs_least_costs(g)
        as_dict = dm.to_dict()
        assert set(as_dict) == set(costs)
        for u in costs:
            # all_pairs omits unreachable targets; to_dict mirrors that.
            assert as_dict[u] == pytest.approx(costs[u])

    def test_len_and_contains(self):
        dm = build_distance_matrix(diamond())
        assert len(dm) == 4
        assert "s" in dm
        assert "zz" not in dm

    def test_unknown_node_raises(self):
        dm = build_distance_matrix(diamond())
        with pytest.raises(KeyError):
            dm.distance("s", "zz")

    def test_wmax_small_costs_kept(self):
        g = nx.DiGraph()
        g.add_edge("a", "b", cost=0.25)
        dm = build_distance_matrix(g)
        assert dm.w_max() == 0.25

    def test_wmax_degenerates_to_one(self):
        # All-zero costs (and single-node graphs) floor w_max at 1.0,
        # matching all_pairs_least_costs.
        g = nx.DiGraph()
        g.add_edge("a", "b", cost=0.0)
        assert build_distance_matrix(g).w_max() == 1.0
        lone = nx.DiGraph()
        lone.add_node("x")
        assert build_distance_matrix(lone).w_max() == 1.0

    def test_explicit_node_order_is_respected(self):
        g = diamond()
        order = ("t", "b", "a", "s")
        dm = build_distance_matrix(g, nodes=order)
        assert dm.nodes == order
        assert dm.matrix[dm.index["s"], dm.index["t"]] == 2.0
