"""LazyRowBackend.repair parity: carried rows == fresh degraded rows, bit for bit.

The lazy tier's repair path mirrors :func:`repro.graph.distance_matrix.
repair_distance_matrix` row by row: a memoized row is carried into the
degraded backend only when no removed edge could have lain on one of its
shortest paths; everything else is dropped and recomputes on demand against
the degraded CSR.  Either way every row must equal a fresh
``LazyRowBackend(degraded_graph)`` build exactly — these tests sweep random
link and node removals over embedded mid-size topologies and assert the
bit-parity, the carry behaviour, and the node-order contract.
"""

import numpy as np
import pytest

from repro.exceptions import InvalidNetworkError
from repro.graph import abovenet, abvt, tinet
from repro.graph.backends import LazyRowBackend
from repro.graph.network import COST

TOPOLOGIES = [abovenet, abvt, tinet]


def _remove_links(graph, picks):
    """Degraded copy of ``graph`` minus ``picks`` + the removal triples."""
    degraded = graph.copy()
    triples = []
    for u, v in picks:
        for a, b in ((u, v), (v, u)):
            if degraded.has_edge(a, b):
                triples.append((a, b, float(graph[a][b][COST])))
                degraded.remove_edge(a, b)
    return degraded, triples


def _assert_full_parity(repaired, degraded_graph):
    fresh = LazyRowBackend(degraded_graph)
    assert repaired.nodes == fresh.nodes
    n = len(fresh.nodes)
    idx = np.arange(n, dtype=np.intp)
    assert np.array_equal(repaired.rows(idx), fresh.rows(idx))


class TestLinkRemovals:
    @pytest.mark.parametrize("factory", TOPOLOGIES)
    @pytest.mark.parametrize("seed", range(3))
    def test_random_link_removals_bit_identical(self, factory, seed):
        graph = factory().graph
        backend = LazyRowBackend(graph)
        rng = np.random.default_rng(seed)
        nodes = list(graph.nodes)
        # memoize a representative subset of rows before the failure
        warm = rng.choice(len(nodes), size=min(10, len(nodes)), replace=False)
        backend.ensure_rows(int(k) for k in warm)
        links = sorted(
            {(min(u, v, key=repr), max(u, v, key=repr)) for u, v in graph.edges},
            key=repr,
        )
        picks = [links[int(k)] for k in
                 rng.choice(len(links), size=3, replace=False)]
        degraded, triples = _remove_links(graph, picks)
        repaired = backend.repair(degraded, removed_edges=triples)
        _assert_full_parity(repaired, degraded)

    def test_unaffected_rows_are_carried_affected_dropped(self):
        graph = abovenet().graph
        backend = LazyRowBackend(graph)
        n = len(backend.nodes)
        backend.ensure_rows(range(n))
        u, v = next(iter(graph.edges))
        degraded, triples = _remove_links(graph, [(u, v)])
        repaired = backend.repair(degraded, removed_edges=triples)
        # some rows survive the carry; the affected ones were dropped, so the
        # child cannot carry everything on a connected topology
        assert 0 < repaired.materialized < n
        # carried exactly the rows whose shortest paths could not have used
        # the removed edge: src -> a -> b -> dst never ties the optimum
        for i in range(n):
            row = backend.row(i)
            affected = False
            for a, b, w in triples:
                lhs = row[backend.index[a]] + w + backend.row(backend.index[b])
                if np.any(np.isfinite(lhs) & (lhs == row)):
                    affected = True
                    break
            assert (i in repaired._rows) == (not affected), (i, affected)
        _assert_full_parity(repaired, degraded)

    def test_empty_parent_repairs_to_fresh_backend(self):
        graph = abvt().graph
        backend = LazyRowBackend(graph)  # nothing memoized
        u, v = next(iter(graph.edges))
        degraded, triples = _remove_links(graph, [(u, v)])
        repaired = backend.repair(degraded, removed_edges=triples)
        assert repaired.materialized == 0
        _assert_full_parity(repaired, degraded)


class TestNodeRemovals:
    @pytest.mark.parametrize("factory", TOPOLOGIES)
    def test_node_removal_bit_identical(self, factory):
        graph = factory().graph
        backend = LazyRowBackend(graph)
        backend.ensure_rows(range(min(12, len(backend.nodes))))
        dead = list(graph.nodes)[3]
        triples = []
        for a, b in list(graph.in_edges(dead)) + list(graph.out_edges(dead)):
            triples.append((a, b, float(graph[a][b][COST])))
        degraded = graph.copy()
        degraded.remove_node(dead)
        repaired = backend.repair(
            degraded, removed_edges=triples, removed_nodes=(dead,)
        )
        assert dead not in repaired.index
        _assert_full_parity(repaired, degraded)
        # carried rows must be column-subset to the surviving order
        for row_idx in repaired._rows:
            assert repaired._rows[row_idx].shape == (len(repaired.nodes),)

    def test_node_order_mismatch_raises(self):
        import networkx as nx

        graph = abovenet().graph
        backend = LazyRowBackend(graph)
        # same nodes and edges, different insertion order: carried rows
        # would be silently mis-indexed, so repair must refuse
        reordered = nx.DiGraph()
        reordered.add_nodes_from(reversed(list(graph.nodes)))
        reordered.add_edges_from(graph.edges(data=True))
        with pytest.raises(InvalidNetworkError):
            backend.repair(reordered, removed_edges=[])
