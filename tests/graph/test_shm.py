"""Shared-memory distance-matrix broadcast: signatures, round-trips, cleanup."""

from pathlib import Path

import networkx as nx
import numpy as np
import pickle

from repro.graph import build_distance_matrix, line_topology
from repro.graph.shm import (
    BundleBroadcast,
    MatrixBroadcast,
    attach_bundle,
    attach_matrix,
    graph_signature,
    lookup_matrix,
    register_matrix,
    unregister_matrix,
)


def small_graph() -> nx.DiGraph:
    g = nx.DiGraph()
    g.add_edge("a", "b", cost=1.5)
    g.add_edge("b", "c", cost=2.5)
    g.add_edge("c", "a", cost=0.5)
    return g


def shm_segments() -> set[str]:
    shm = Path("/dev/shm")
    if not shm.exists():  # pragma: no cover - non-Linux
        return set()
    return {p.name for p in shm.iterdir()}


class TestSignature:
    def test_deterministic(self):
        assert graph_signature(small_graph()) == graph_signature(small_graph())

    def test_cost_change_changes_signature(self):
        g = small_graph()
        h = small_graph()
        h["a"]["b"]["cost"] = 1.5000000001
        assert graph_signature(g) != graph_signature(h)

    def test_edge_set_change_changes_signature(self):
        g = small_graph()
        h = small_graph()
        h.add_edge("a", "c", cost=9.0)
        assert graph_signature(g) != graph_signature(h)

    def test_node_order_change_changes_signature(self):
        g = small_graph()
        h = nx.DiGraph()
        h.add_nodes_from(reversed(list(g.nodes)))
        h.add_edges_from(g.edges(data=True))
        assert graph_signature(g) != graph_signature(h)


class TestBroadcast:
    def test_attach_round_trip_bit_identical(self):
        g = small_graph()
        dm = build_distance_matrix(g)
        sig = graph_signature(g)
        with MatrixBroadcast(dm, sig) as broadcast:
            attached = attach_matrix(broadcast.handle)
            assert attached.nodes == dm.nodes
            assert np.array_equal(attached.matrix, dm.matrix)
            assert not attached.matrix.flags.writeable

    def test_close_unlinks_segment(self):
        dm = build_distance_matrix(small_graph())
        before = shm_segments()
        broadcast = MatrixBroadcast(dm, "sig")
        assert shm_segments() - before  # segment exists while open
        broadcast.close()
        assert shm_segments() - before == set()
        broadcast.close()  # idempotent

    def test_handle_pickles_small_and_subquadratic(self):
        # The per-pool payload is the handle, not the matrix: O(|V|) bytes.
        sizes = {}
        for n in (30, 60):
            net = line_topology(n)
            dm = build_distance_matrix(net.graph)
            with MatrixBroadcast(dm, "sig") as broadcast:
                sizes[n] = len(pickle.dumps(broadcast.handle))
                assert sizes[n] < dm.matrix.nbytes / 10
        # Doubling |V| quadruples the matrix but must not quadruple the
        # handle (node labels grow linearly).
        assert sizes[60] < 3 * sizes[30]


class TestBundle:
    def sample_arrays(self) -> dict[str, np.ndarray]:
        return {
            "rates": np.array([1.0, 2.5, 4.0]),
            "ptr": np.array([0, 2, 5], dtype=np.int64),
            "flags": np.array([1, 0, 1], dtype=np.int8),
            "empty": np.zeros(0),
        }

    def test_attach_round_trip_read_only(self):
        arrays = self.sample_arrays()
        broadcast = BundleBroadcast(arrays)
        try:
            attached = attach_bundle(broadcast.handle)
            assert set(attached) == set(arrays)
            for name, arr in arrays.items():
                assert attached[name].dtype == arr.dtype
                assert np.array_equal(attached[name], arr)
                assert not attached[name].flags.writeable
        finally:
            broadcast.close()

    def test_close_unlinks_segment(self):
        before = shm_segments()
        broadcast = BundleBroadcast(self.sample_arrays())
        assert shm_segments() - before  # segment exists while open
        broadcast.close()
        assert shm_segments() - before == set()
        broadcast.close()  # idempotent

    def test_handle_pickles_small(self):
        # The per-pool payload is the handle, not the arrays.
        arrays = {"big": np.zeros(200_000)}
        broadcast = BundleBroadcast(arrays)
        try:
            assert len(pickle.dumps(broadcast.handle)) < 1_000
        finally:
            broadcast.close()

    def test_heterogeneous_dtypes_keep_alignment(self):
        arrays = {
            "bytes1": np.arange(7, dtype=np.int8),
            "floats": np.arange(5, dtype=np.float64),
            "ints": np.arange(3, dtype=np.int64),
        }
        broadcast = BundleBroadcast(arrays)
        try:
            for spec in broadcast.handle.specs:
                assert spec.offset % 64 == 0
            attached = attach_bundle(broadcast.handle)
            for name, arr in arrays.items():
                assert np.array_equal(attached[name], arr)
        finally:
            broadcast.close()


class TestRegistry:
    def test_lookup_hits_only_matching_graph(self):
        g = small_graph()
        dm = build_distance_matrix(g)
        sig = graph_signature(g)
        assert lookup_matrix(g) is None  # empty registry: free miss
        register_matrix(sig, dm)
        try:
            assert lookup_matrix(g) is dm
            other = small_graph()
            other["a"]["b"]["cost"] = 7.0
            assert lookup_matrix(other) is None
        finally:
            unregister_matrix(sig)
        assert lookup_matrix(g) is None

    def test_context_from_problem_uses_registry(self):
        from repro.core.context import SolverContext
        from tests.core.conftest import random_uncapacitated_problem

        problem = random_uncapacitated_problem(0)
        dm = build_distance_matrix(problem.network.graph)
        sig = graph_signature(problem.network.graph)
        register_matrix(sig, dm)
        try:
            ctx = SolverContext.from_problem(problem)
            assert ctx.dm is dm
        finally:
            unregister_matrix(sig)
        fresh = SolverContext.from_problem(problem)
        assert fresh.dm is not dm
        assert np.array_equal(fresh.dm.matrix, dm.matrix)


class TestRowsBroadcast:
    def test_attach_round_trip_bit_identical(self):
        from repro.graph.backends import LazyRowBackend
        from repro.graph.shm import RowsBroadcast, attach_rows

        g = small_graph()
        backend = LazyRowBackend(g)
        backend.ensure_rows([0, 2])
        store = backend.row_store()
        sig = graph_signature(g)
        with RowsBroadcast(store, backend.nodes, sig) as broadcast:
            attached = attach_rows(broadcast.handle)
            assert np.array_equal(attached.row_ids, store.row_ids)
            assert np.array_equal(attached.block, store.block)
            assert not attached.block.flags.writeable
            # a backend over the attached store serves those rows zero-copy
            reloaded = LazyRowBackend(g, store=attached)
            assert reloaded.materialized == 2
            assert np.array_equal(reloaded.row(0), backend.row(0))

    def test_close_unlinks_segment(self):
        from repro.graph.backends import LazyRowBackend
        from repro.graph.shm import RowsBroadcast

        g = small_graph()
        backend = LazyRowBackend(g)
        backend.ensure_rows([1])
        before = shm_segments()
        broadcast = RowsBroadcast(
            backend.row_store(), backend.nodes, graph_signature(g)
        )
        assert shm_segments() - before
        broadcast.close()
        broadcast.close()  # idempotent
        assert shm_segments() == before

    def test_handle_pickles_small(self):
        from repro.graph.backends import LazyRowBackend
        from repro.graph.shm import RowsBroadcast

        g = nx.DiGraph()
        for i in range(200):
            g.add_edge(i, (i + 1) % 200, cost=1.0)
        backend = LazyRowBackend(g)
        backend.ensure_rows(range(100))
        with RowsBroadcast(
            backend.row_store(), backend.nodes, graph_signature(g)
        ) as broadcast:
            payload = pickle.dumps(broadcast.handle)
            # far below the 100 * 200 * 8 B block: only specs + labels travel
            assert len(payload) < 20_000

    def test_registry_round_trip_feeds_context(self):
        from repro.graph.backends import LazyRowBackend
        from repro.graph.shm import lookup_rows, register_rows, unregister_rows

        g = small_graph()
        backend = LazyRowBackend(g)
        backend.ensure_rows([0, 1, 2])
        store = backend.row_store()
        sig = graph_signature(g)
        register_rows(sig, store)
        try:
            assert lookup_rows(g) is store
            other = nx.DiGraph()
            other.add_edge("x", "y", cost=1.0)
            assert lookup_rows(other) is None
        finally:
            unregister_rows(sig)
        assert lookup_rows(g) is None
