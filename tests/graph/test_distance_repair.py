"""Parity tests: incremental distance-matrix repair vs. fresh rebuild.

The reuse layer's correctness hinges on :func:`repair_distance_matrix`
producing *bit-identical* matrices to :func:`build_distance_matrix` on the
degraded graph — these tests exercise randomized single-link, k-link, and
node failures (including ones that disconnect the graph) and compare with
``np.array_equal(..., equal_nan=True)`` style exact checks (inf == inf, no
tolerances).
"""

import math

import networkx as nx
import numpy as np
import pytest

from repro.exceptions import InvalidNetworkError
from repro.graph import build_distance_matrix
from repro.graph.distance_matrix import affected_sources, repair_distance_matrix


def random_graph(seed: int, n: int = 12, p: float = 0.3) -> nx.DiGraph:
    rng = np.random.default_rng(seed)
    g = nx.DiGraph()
    g.add_nodes_from(range(n))
    for u in range(n):
        for v in range(n):
            if u != v and rng.random() < p:
                g.add_edge(u, v, cost=float(rng.uniform(0.5, 10.0)))
    return g


def assert_bit_identical(repaired, fresh):
    assert repaired.nodes == fresh.nodes
    assert np.array_equal(repaired.matrix, fresh.matrix), (
        np.argwhere(~np.isclose(repaired.matrix, fresh.matrix, equal_nan=True))
    )
    # w_max is derived from the matrix, but assert it anyway: it feeds the
    # submodular oracle's saturation cap.
    assert repaired.w_max() == fresh.w_max()


def remove_edges(g: nx.DiGraph, edges):
    removed = []
    for (u, v) in edges:
        removed.append((u, v, float(g[u][v]["cost"])))
        g.remove_edge(u, v)
    return removed


class TestSingleLink:
    @pytest.mark.parametrize("seed", range(10))
    def test_random_single_link_bit_identical(self, seed):
        g = random_graph(seed)
        parent = build_distance_matrix(g)
        rng = np.random.default_rng(1000 + seed)
        edges = list(g.edges)
        target = edges[int(rng.integers(len(edges)))]
        degraded = g.copy()
        removed = remove_edges(degraded, [target])
        repaired = repair_distance_matrix(parent, degraded, removed_edges=removed)
        assert_bit_identical(repaired, build_distance_matrix(degraded))

    def test_every_single_link_on_one_topology(self):
        g = random_graph(3, n=8, p=0.35)
        parent = build_distance_matrix(g)
        for target in list(g.edges):
            degraded = g.copy()
            removed = remove_edges(degraded, [target])
            repaired = repair_distance_matrix(
                parent, degraded, removed_edges=removed
            )
            assert_bit_identical(repaired, build_distance_matrix(degraded))

    def test_disconnecting_bridge_goes_inf(self):
        g = nx.DiGraph()
        g.add_edge("a", "b", cost=1.0)
        g.add_edge("b", "c", cost=2.0)
        g.add_edge("c", "b", cost=2.0)
        parent = build_distance_matrix(g)
        degraded = g.copy()
        removed = remove_edges(degraded, [("a", "b")])
        repaired = repair_distance_matrix(parent, degraded, removed_edges=removed)
        fresh = build_distance_matrix(degraded)
        assert_bit_identical(repaired, fresh)
        assert repaired.distance("a", "c") == math.inf


class TestKLink:
    @pytest.mark.parametrize("seed", range(8))
    @pytest.mark.parametrize("k", [2, 3])
    def test_random_k_link_bit_identical(self, seed, k):
        g = random_graph(seed, n=14)
        parent = build_distance_matrix(g)
        rng = np.random.default_rng(2000 + 10 * seed + k)
        edges = list(g.edges)
        picks = rng.choice(len(edges), size=min(k, len(edges)), replace=False)
        degraded = g.copy()
        removed = remove_edges(degraded, [edges[int(i)] for i in picks])
        repaired = repair_distance_matrix(parent, degraded, removed_edges=removed)
        assert_bit_identical(repaired, build_distance_matrix(degraded))


class TestNodeFailure:
    @pytest.mark.parametrize("seed", range(8))
    def test_random_node_removal_bit_identical(self, seed):
        g = random_graph(seed, n=12)
        parent = build_distance_matrix(g)
        rng = np.random.default_rng(3000 + seed)
        dead = int(rng.integers(g.number_of_nodes()))
        degraded = g.copy()
        removed = remove_edges(
            degraded,
            [e for e in g.edges if dead in e],
        )
        degraded.remove_node(dead)
        repaired = repair_distance_matrix(
            parent, degraded, removed_edges=removed, removed_nodes=(dead,)
        )
        assert_bit_identical(repaired, build_distance_matrix(degraded))

    def test_articulation_node_disconnects(self):
        # line a -> m -> b: removing m strands a from b entirely.
        g = nx.DiGraph()
        g.add_edge("a", "m", cost=1.0)
        g.add_edge("m", "b", cost=1.0)
        g.add_edge("b", "m", cost=1.0)
        g.add_edge("m", "a", cost=1.0)
        parent = build_distance_matrix(g)
        degraded = g.copy()
        removed = remove_edges(degraded, [e for e in g.edges if "m" in e])
        degraded.remove_node("m")
        repaired = repair_distance_matrix(
            parent, degraded, removed_edges=removed, removed_nodes=("m",)
        )
        fresh = build_distance_matrix(degraded)
        assert_bit_identical(repaired, fresh)
        assert repaired.distance("a", "b") == math.inf


class TestAffectedSources:
    def test_unflagged_rows_truly_unchanged(self):
        # The mask is allowed to over-flag, never to under-flag: every row it
        # leaves out must be identical in a full rebuild.
        for seed in range(6):
            g = random_graph(seed, n=10)
            parent = build_distance_matrix(g)
            rng = np.random.default_rng(4000 + seed)
            edges = list(g.edges)
            target = edges[int(rng.integers(len(edges)))]
            degraded = g.copy()
            removed = remove_edges(degraded, [target])
            mask = affected_sources(parent, removed)
            fresh = build_distance_matrix(degraded)
            unflagged = np.flatnonzero(~mask)
            assert np.array_equal(
                parent.matrix[unflagged], fresh.matrix[unflagged]
            )

    def test_edge_off_every_shortest_path_flags_nothing(self):
        g = nx.DiGraph()
        g.add_edge("a", "b", cost=1.0)
        g.add_edge("a", "c", cost=100.0)  # never on a shortest path
        g.add_edge("b", "c", cost=1.0)
        parent = build_distance_matrix(g)
        mask = affected_sources(parent, [("a", "c", 100.0)])
        assert not mask.any()


class TestGuards:
    def test_node_order_mismatch_raises(self):
        g = random_graph(0, n=6)
        parent = build_distance_matrix(g)
        shuffled = nx.DiGraph()
        shuffled.add_nodes_from(reversed(list(g.nodes)))
        shuffled.add_edges_from(g.edges(data=True))
        with pytest.raises(InvalidNetworkError):
            repair_distance_matrix(parent, shuffled, removed_edges=[])

    def test_empty_after_removing_everything(self):
        g = nx.DiGraph()
        g.add_edge("a", "b", cost=1.0)
        parent = build_distance_matrix(g)
        degraded = nx.DiGraph()
        repaired = repair_distance_matrix(
            parent,
            degraded,
            removed_edges=[("a", "b", 1.0)],
            removed_nodes=("a", "b"),
        )
        assert repaired.matrix.shape == (0, 0)

    def test_pure_dijkstra_backend_matches(self):
        g = random_graph(5, n=9)
        parent = build_distance_matrix(g, use_scipy=False)
        rng = np.random.default_rng(7)
        edges = list(g.edges)
        target = edges[int(rng.integers(len(edges)))]
        degraded = g.copy()
        removed = remove_edges(degraded, [target])
        repaired = repair_distance_matrix(
            parent, degraded, removed_edges=removed, use_scipy=False
        )
        assert_bit_identical(
            repaired, build_distance_matrix(degraded, use_scipy=False)
        )


class TestPartialSources:
    @pytest.mark.parametrize("seed", range(6))
    def test_requested_rows_bit_identical_rest_nan(self, seed):
        g = random_graph(seed)
        parent = build_distance_matrix(g)
        rng = np.random.default_rng(seed)
        edges = list(g.edges)
        removed = remove_edges(
            g, [edges[int(j)] for j in rng.choice(len(edges), 3, replace=False)]
        )
        wanted = [int(j) for j in rng.choice(len(parent), 4, replace=False)]
        partial = repair_distance_matrix(
            parent, g, removed_edges=removed, sources=[parent.nodes[j] for j in wanted]
        )
        fresh = build_distance_matrix(g)
        for i in range(len(parent)):
            if i in wanted:
                assert np.array_equal(partial.matrix[i], fresh.matrix[i])
            else:
                # Unrequested rows are loudly invalid, never silently stale.
                assert np.isnan(partial.matrix[i]).all()

    def test_chained_partial_repairs_stay_exact(self):
        # A partial matrix may parent further partial repairs as long as the
        # requested sources never grow — exactly the timeline controller's
        # usage (cache/pinned rows only shrink as nodes fail).
        g = random_graph(3)
        parent = build_distance_matrix(g)
        sources = list(parent.nodes)[:5]
        edges = list(g.edges)
        first = remove_edges(g, edges[:2])
        step1 = repair_distance_matrix(
            parent, g, removed_edges=first, sources=sources
        )
        second = remove_edges(g, [e for e in list(g.edges)[:2]])
        shrunk = sources[:3]
        step2 = repair_distance_matrix(
            step1, g, removed_edges=second, sources=shrunk
        )
        fresh = build_distance_matrix(g)
        for v in shrunk:
            i = step2.index[v]
            assert np.array_equal(step2.matrix[i], fresh.matrix[i])

    def test_unknown_source_nodes_ignored(self):
        g = random_graph(1)
        parent = build_distance_matrix(g)
        removed = remove_edges(g, list(g.edges)[:1])
        partial = repair_distance_matrix(
            parent, g, removed_edges=removed, sources=["not-a-node", 0]
        )
        fresh = build_distance_matrix(g)
        assert np.array_equal(partial.matrix[partial.index[0]],
                              fresh.matrix[fresh.index[0]])
