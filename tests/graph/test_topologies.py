"""Tests for embedded and synthetic topologies."""

import networkx as nx
import pytest

from repro.exceptions import InvalidNetworkError
from repro.graph import (
    abilene_like,
    abovenet,
    abvt,
    deltacom,
    edge_caching_roles,
    line_topology,
    pop_core_edge_hierarchy,
    random_topology,
    tinet,
    tree_topology,
)
from repro.graph.topologies import _isp_like


def undirected_edge_count(net) -> int:
    return net.num_edges // 2


class TestEmbeddedTopologies:
    @pytest.mark.parametrize(
        "factory,nodes,links",
        [(abvt, 23, 31), (tinet, 53, 89), (deltacom, 113, 161)],
    )
    def test_table5_sizes(self, factory, nodes, links):
        net = factory()
        assert net.num_nodes == nodes
        assert undirected_edge_count(net) == links

    @pytest.mark.parametrize("factory", [abovenet, abvt, tinet, deltacom, abilene_like])
    def test_connected_and_symmetric(self, factory):
        net = factory()
        assert nx.is_strongly_connected(net.graph)
        for u, v in net.edges:
            assert net.has_edge(v, u)

    @pytest.mark.parametrize("factory", [abvt, tinet, deltacom])
    def test_deterministic(self, factory):
        assert set(factory().edges) == set(factory().edges)

    def test_abovenet_has_degree_one_gateway(self):
        net = abovenet()
        assert net.undirected_degree("LON") == 1

    @pytest.mark.parametrize("factory", [abovenet, abvt, tinet, deltacom])
    def test_default_attributes(self, factory):
        net = factory()
        for (u, v), cost in net.costs().items():
            assert cost == 1.0
        assert all(cap == float("inf") for cap in net.capacities().values())


class TestSyntheticTopologies:
    def test_line_topology(self):
        net = line_topology(5)
        assert net.num_nodes == 5
        assert undirected_edge_count(net) == 4

    def test_line_too_short(self):
        with pytest.raises(InvalidNetworkError):
            line_topology(1)

    def test_tree_topology(self):
        net = tree_topology(2, 3)
        assert net.num_nodes == 15
        assert nx.is_strongly_connected(net.graph)

    def test_tree_invalid_params(self):
        with pytest.raises(InvalidNetworkError):
            tree_topology(0, 2)

    def test_random_topology_connected(self):
        net = random_topology(30, average_degree=2.5, seed=7)
        assert net.num_nodes == 30
        assert nx.is_strongly_connected(net.graph)

    def test_random_topology_seed_reproducible(self):
        a = random_topology(20, seed=3)
        b = random_topology(20, seed=3)
        assert set(a.edges) == set(b.edges)

    def test_random_topology_too_small(self):
        with pytest.raises(InvalidNetworkError):
            random_topology(1)

    def test_random_topology_link_count_invariant(self):
        for n, deg in [(20, 2.0), (40, 3.0), (25, 4.0)]:
            net = random_topology(n, average_degree=deg, seed=11)
            expected = max(n - 1, int(round(n * deg / 2)))
            assert undirected_edge_count(net) == min(expected, n * (n - 1) // 2)

    @pytest.mark.parametrize("n,links", [(15, 20), (40, 60)])
    def test_isp_like_exact_counts_and_connectivity(self, n, links):
        net = _isp_like(n, links, seed=5)
        assert net.num_nodes == n
        assert undirected_edge_count(net) == links
        assert nx.is_strongly_connected(net.graph)

    def test_isp_like_seed_determinism(self):
        assert set(_isp_like(30, 45, seed=9).edges) == set(
            _isp_like(30, 45, seed=9).edges
        )

    def test_isp_like_invalid_link_counts(self):
        with pytest.raises(InvalidNetworkError):
            _isp_like(10, 8, seed=0)  # fewer than n-1
        with pytest.raises(InvalidNetworkError):
            _isp_like(5, 11, seed=0)  # more than C(5, 2)


class TestPopCoreEdgeHierarchy:
    def test_node_count_formula(self):
        net = pop_core_edge_hierarchy(4, 3, 2, seed=0)
        assert net.num_nodes == 4 * (1 + 3 * (1 + 2))
        big = pop_core_edge_hierarchy(100, 9, 10, seed=0)
        assert big.num_nodes == 10_000

    def test_connected_and_symmetric(self):
        net = pop_core_edge_hierarchy(6, 4, 3, seed=1)
        assert nx.is_strongly_connected(net.graph)
        for u, v in net.edges:
            assert net.has_edge(v, u)

    def test_seed_determinism(self):
        a = pop_core_edge_hierarchy(8, 3, 2, seed=5)
        b = pop_core_edge_hierarchy(8, 3, 2, seed=5)
        assert list(a.nodes) == list(b.nodes)
        assert set(a.edges) == set(b.edges)
        c = pop_core_edge_hierarchy(8, 3, 2, seed=6)
        assert set(c.edges) != set(a.edges)

    def test_layer_structure(self):
        net = pop_core_edge_hierarchy(5, 2, 3, seed=2, dual_home_fraction=0.0)
        cores = [v for v in net.nodes if str(v).startswith("c")]
        pops = [v for v in net.nodes if str(v).startswith("p")]
        edges = [v for v in net.nodes if str(v).startswith("e")]
        assert (len(cores), len(pops), len(edges)) == (5, 10, 30)
        # without dual-homing each PoP has exactly one core uplink
        for p in pops:
            uplinks = [u for u in net.graph.predecessors(p) if str(u).startswith("c")]
            assert len(uplinks) == 1
        # every edge leaf hangs off exactly one PoP
        for e in edges:
            assert net.undirected_degree(e) == 1

    def test_dual_homing_adds_pop_uplinks(self):
        single = pop_core_edge_hierarchy(10, 5, 0, seed=3, dual_home_fraction=0.0)
        dual = pop_core_edge_hierarchy(10, 5, 0, seed=3, dual_home_fraction=1.0)
        assert undirected_edge_count(dual) == undirected_edge_count(single) + 10 * 5

    def test_default_attributes(self):
        net = pop_core_edge_hierarchy(3, 2, 2, seed=0)
        assert all(cost == 1.0 for cost in net.costs().values())
        assert all(cap == float("inf") for cap in net.capacities().values())

    def test_invalid_params(self):
        with pytest.raises(InvalidNetworkError):
            pop_core_edge_hierarchy(1, 2, 2)
        with pytest.raises(InvalidNetworkError):
            pop_core_edge_hierarchy(4, -1, 2)
        with pytest.raises(InvalidNetworkError):
            pop_core_edge_hierarchy(4, 2, 2, dual_home_fraction=1.5)


class TestEdgeCachingRoles:
    def test_origin_is_lowest_degree(self):
        net = abovenet()
        origin, edge_nodes = edge_caching_roles(net)
        assert origin == "LON"
        assert origin not in edge_nodes
        assert all(net.undirected_degree(v) <= 3 for v in edge_nodes)

    def test_explicit_count(self):
        net = tinet()
        origin, edge_nodes = edge_caching_roles(net, num_edge_nodes=5)
        assert len(edge_nodes) == 5
        assert origin not in edge_nodes

    def test_count_too_large(self):
        with pytest.raises(InvalidNetworkError):
            edge_caching_roles(line_topology(3), num_edge_nodes=10)
