"""Tests for embedded and synthetic topologies."""

import networkx as nx
import pytest

from repro.exceptions import InvalidNetworkError
from repro.graph import (
    abilene_like,
    abovenet,
    abvt,
    deltacom,
    edge_caching_roles,
    line_topology,
    random_topology,
    tinet,
    tree_topology,
)


def undirected_edge_count(net) -> int:
    return net.num_edges // 2


class TestEmbeddedTopologies:
    @pytest.mark.parametrize(
        "factory,nodes,links",
        [(abvt, 23, 31), (tinet, 53, 89), (deltacom, 113, 161)],
    )
    def test_table5_sizes(self, factory, nodes, links):
        net = factory()
        assert net.num_nodes == nodes
        assert undirected_edge_count(net) == links

    @pytest.mark.parametrize("factory", [abovenet, abvt, tinet, deltacom, abilene_like])
    def test_connected_and_symmetric(self, factory):
        net = factory()
        assert nx.is_strongly_connected(net.graph)
        for u, v in net.edges:
            assert net.has_edge(v, u)

    @pytest.mark.parametrize("factory", [abvt, tinet, deltacom])
    def test_deterministic(self, factory):
        assert set(factory().edges) == set(factory().edges)

    def test_abovenet_has_degree_one_gateway(self):
        net = abovenet()
        assert net.undirected_degree("LON") == 1

    @pytest.mark.parametrize("factory", [abovenet, abvt, tinet, deltacom])
    def test_default_attributes(self, factory):
        net = factory()
        for (u, v), cost in net.costs().items():
            assert cost == 1.0
        assert all(cap == float("inf") for cap in net.capacities().values())


class TestSyntheticTopologies:
    def test_line_topology(self):
        net = line_topology(5)
        assert net.num_nodes == 5
        assert undirected_edge_count(net) == 4

    def test_line_too_short(self):
        with pytest.raises(InvalidNetworkError):
            line_topology(1)

    def test_tree_topology(self):
        net = tree_topology(2, 3)
        assert net.num_nodes == 15
        assert nx.is_strongly_connected(net.graph)

    def test_tree_invalid_params(self):
        with pytest.raises(InvalidNetworkError):
            tree_topology(0, 2)

    def test_random_topology_connected(self):
        net = random_topology(30, average_degree=2.5, seed=7)
        assert net.num_nodes == 30
        assert nx.is_strongly_connected(net.graph)

    def test_random_topology_seed_reproducible(self):
        a = random_topology(20, seed=3)
        b = random_topology(20, seed=3)
        assert set(a.edges) == set(b.edges)

    def test_random_topology_too_small(self):
        with pytest.raises(InvalidNetworkError):
            random_topology(1)


class TestEdgeCachingRoles:
    def test_origin_is_lowest_degree(self):
        net = abovenet()
        origin, edge_nodes = edge_caching_roles(net)
        assert origin == "LON"
        assert origin not in edge_nodes
        assert all(net.undirected_degree(v) <= 3 for v in edge_nodes)

    def test_explicit_count(self):
        net = tinet()
        origin, edge_nodes = edge_caching_roles(net, num_edge_nodes=5)
        assert len(edge_nodes) == 5
        assert origin not in edge_nodes

    def test_count_too_large(self):
        with pytest.raises(InvalidNetworkError):
            edge_caching_roles(line_topology(3), num_edge_nodes=10)
