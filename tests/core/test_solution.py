"""Tests for Placement / Routing / Solution containers."""

import pytest

from repro.core import Placement, Routing, Solution
from repro.exceptions import InvalidProblemError
from repro.flow.decomposition import PathFlow

from tests.core.conftest import make_line_problem


class TestPlacement:
    def test_set_and_get(self):
        p = Placement()
        p[(1, "a")] = 1.0
        assert p[(1, "a")] == 1.0
        assert p[(2, "a")] == 0.0

    def test_zero_removes_entry(self):
        p = Placement({(1, "a"): 1.0})
        p[(1, "a")] = 0.0
        assert (1, "a") not in p
        assert len(p) == 0

    def test_out_of_range_rejected(self):
        p = Placement()
        with pytest.raises(InvalidProblemError):
            p[(1, "a")] = 1.5
        with pytest.raises(InvalidProblemError):
            p[(1, "a")] = -0.2

    def test_is_integral(self):
        assert Placement({(1, "a"): 1.0}).is_integral()
        assert not Placement({(1, "a"): 0.5}).is_integral()
        assert Placement().is_integral()

    def test_items_at_and_holders(self):
        p = Placement({(1, "a"): 1.0, (1, "b"): 0.5, (2, "a"): 1.0})
        assert p.items_at(1) == {"a", "b"}
        assert p.holders("a") == {1, 2}

    def test_used_capacity_ignores_pinned(self):
        prob = make_line_problem(cache_nodes={3: 2})
        p = Placement({(3, prob.catalog[0]): 1.0, (0, prob.catalog[0]): 1.0})
        assert p.used_capacity(3, prob) == pytest.approx(1.0)
        assert p.used_capacity(0, prob) == pytest.approx(0.0)  # pinned at origin

    def test_used_capacity_with_sizes(self):
        from repro.core import ProblemInstance
        from repro.graph import line_topology

        net = line_topology(3)
        net.set_cache_capacity(1, 10)
        prob = ProblemInstance(
            net, ("a", "b"), {("a", 2): 1.0}, item_sizes={"a": 3.0, "b": 4.0}
        )
        p = Placement({(1, "a"): 1.0, (1, "b"): 1.0})
        assert p.used_capacity(1, prob) == pytest.approx(7.0)

    def test_as_set_and_from_set_roundtrip(self):
        entries = {(1, "a"), (2, "b")}
        p = Placement.from_set(entries)
        assert p.as_set() == frozenset(entries)

    def test_copy_independent(self):
        p = Placement({(1, "a"): 1.0})
        q = p.copy()
        q[(1, "a")] = 0.0
        assert p[(1, "a")] == 1.0


class TestRouting:
    def test_served_fraction(self):
        r = Routing()
        r.paths[("a", 2)] = [
            PathFlow(path=(0, 1, 2), amount=0.6),
            PathFlow(path=(1, 2), amount=0.4),
        ]
        assert r.served_fraction(("a", 2)) == pytest.approx(1.0)
        assert r.served_fraction(("b", 2)) == 0.0

    def test_sources_aggregates_by_head(self):
        r = Routing()
        r.paths[("a", 2)] = [
            PathFlow(path=(0, 1, 2), amount=0.6),
            PathFlow(path=(0, 2), amount=0.1),
            PathFlow(path=(1, 2), amount=0.3),
        ]
        assert r.sources(("a", 2)) == pytest.approx({0: 0.7, 1: 0.3})

    def test_is_integral(self):
        r = Routing({("a", 2): [PathFlow(path=(0, 2), amount=1.0)]})
        assert r.is_integral()
        r2 = Routing({("a", 2): [PathFlow(path=(0, 2), amount=0.5)]})
        assert not r2.is_integral()

    def test_copy_independent(self):
        r = Routing({("a", 2): [PathFlow(path=(0, 2), amount=1.0)]})
        c = r.copy()
        c.paths[("a", 2)].append(PathFlow(path=(1, 2), amount=0.5))
        assert len(r.paths[("a", 2)]) == 1


class TestSolution:
    def test_copy_is_deep_enough(self):
        sol = Solution(Placement({(1, "a"): 1.0}), Routing())
        dup = sol.copy()
        dup.placement[(1, "a")] = 0.0
        assert sol.placement[(1, "a")] == 1.0
