"""Direct tests for the 1-swap local search on F_RNR."""

import pytest

from repro.core import (
    Placement,
    route_to_nearest_replica,
    routing_cost,
)
from repro.core.submodular import local_search_swap

from tests.core.conftest import (
    brute_force_rnr_optimum,
    make_line_problem,
    random_uncapacitated_problem,
)


def rnr_cost(problem, placement):
    return routing_cost(problem, route_to_nearest_replica(problem, placement))


class TestLocalSearchSwap:
    def test_fixes_obviously_bad_placement(self):
        prob = make_line_problem(cache_nodes={3: 1})
        bad = Placement({(3, prob.catalog[1]): 1.0})  # caches the rate-1 item
        polished = local_search_swap(prob, bad)
        assert (3, prob.catalog[0]) in polished  # swapped to the rate-5 item
        assert rnr_cost(prob, polished) < rnr_cost(prob, bad)

    def test_fills_spare_capacity(self):
        prob = make_line_problem(cache_nodes={3: 2})
        polished = local_search_swap(prob, Placement())
        assert len(polished) == 2  # pure insertions, no eviction needed
        assert rnr_cost(prob, polished) == pytest.approx(
            brute_force_rnr_optimum(prob)
        )

    def test_never_increases_cost(self):
        for seed in (3, 17, 55):
            prob = random_uncapacitated_problem(seed)
            from repro.core import greedy_rnr_placement

            start = greedy_rnr_placement(prob)
            polished = local_search_swap(prob, start, max_sweeps=6)
            assert rnr_cost(prob, polished) <= rnr_cost(prob, start) + 1e-9

    def test_respects_capacities(self):
        prob = random_uncapacitated_problem(7)
        from repro.core import greedy_rnr_placement

        polished = local_search_swap(prob, greedy_rnr_placement(prob))
        for v in prob.network.cache_nodes():
            assert polished.used_capacity(v, prob) <= (
                prob.network.cache_capacity(v) + 1e-9
            )

    def test_optimal_placement_is_fixed_point(self):
        prob = make_line_problem(cache_nodes={3: 1})
        good = Placement({(3, prob.catalog[0]): 1.0})
        polished = local_search_swap(prob, good)
        assert polished.as_set() == good.as_set()

    def test_input_not_mutated(self):
        prob = make_line_problem(cache_nodes={3: 1})
        bad = Placement({(3, prob.catalog[1]): 1.0})
        local_search_swap(prob, bad)
        assert bad.as_set() == frozenset({(3, prob.catalog[1])})

    def test_never_places_pinned_items(self):
        prob = make_line_problem(cache_nodes={0: 3, 3: 1})
        polished = local_search_swap(prob, Placement())
        assert all((v, i) not in prob.pinned for (v, i) in polished)

    def test_zero_sweeps_is_identity(self):
        prob = make_line_problem(cache_nodes={3: 1})
        bad = Placement({(3, prob.catalog[1]): 1.0})
        assert local_search_swap(prob, bad, max_sweeps=0).as_set() == bad.as_set()
