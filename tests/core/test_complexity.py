"""Tests for the Section-3 complexity taxonomy."""

import pytest

from repro.core import all_regimes, regime_complexity
from repro.exceptions import InvalidProblemError


class TestComplexityTaxonomy:
    def test_fcfr_polynomial(self):
        verdict = regime_complexity("fractional", "fractional")
        assert verdict.complexity == "P"
        assert verdict.polynomial_solver == "repro.core.fcfr.solve_fcfr"

    @pytest.mark.parametrize(
        "caching,routing",
        [("integral", "fractional"), ("integral", "integral"), ("fractional", "integral")],
    )
    def test_other_regimes_np_hard(self, caching, routing):
        verdict = regime_complexity(caching, routing)
        assert verdict.complexity == "NP-hard"
        assert verdict.polynomial_solver is None
        assert verdict.reduction

    def test_invalid_mode(self):
        with pytest.raises(InvalidProblemError):
            regime_complexity("quantum", "integral")

    def test_all_regimes_cover_fig1(self):
        regimes = all_regimes()
        assert [r.regime for r in regimes] == ["FC-FR", "IC-FR", "IC-IR", "FC-IR"]
        assert sum(1 for r in regimes if r.complexity == "P") == 1

    def test_polynomial_solver_actually_exists(self):
        verdict = regime_complexity("fractional", "fractional")
        module_name, func_name = verdict.polynomial_solver.rsplit(".", 1)
        import importlib

        module = importlib.import_module(module_name)
        assert callable(getattr(module, func_name))
