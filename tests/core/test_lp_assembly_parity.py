"""Dict-path vs array-path LP assembly parity across the three LP call sites.

Acceptance criterion for the sparse-assembly fast path: on random instances
of FC-FR (LP (1)), Algorithm 1's LP (7), and the MSUFP splittable-routing LP,
the keyed ``assembly="dict"`` and the block/COO ``assembly="array"`` paths
must produce *identical* solutions — same matrices after canonicalisation,
bit-identical objectives, and the same placements / flows.
"""

import networkx as nx
import numpy as np
import pytest

from repro.core.algorithm1 import algorithm1, assemble_lp7
from repro.core.context import SolverContext
from repro.core.fcfr import assemble_fcfr_lp, solve_fcfr
from repro.flow.mincost import (
    arc_incidence,
    min_cost_multicommodity_flow,
    min_cost_single_source_flow,
)
from tests.core.conftest import random_uncapacitated_problem
from tests.core.test_properties import random_capacitated_problem

FCFR_SEEDS = range(8)
LP7_SEEDS = range(8)
MSUFP_SEEDS = range(8)


def assert_same_materialized(dict_lp, array_lp):
    md, ma = dict_lp.materialize(), array_lp.materialize()
    assert np.array_equal(md.c, ma.c)
    assert np.array_equal(md.bounds, ma.bounds)
    for attr in ("a_ub", "a_eq"):
        ad, aa = getattr(md, attr), getattr(ma, attr)
        if ad is None:
            assert aa is None
        else:
            assert ad.shape == aa.shape
            assert (ad != aa).nnz == 0
    for attr in ("b_ub", "b_eq"):
        bd, ba = getattr(md, attr), getattr(ma, attr)
        assert (bd is None) == (ba is None)
        if bd is not None:
            assert np.array_equal(bd, ba)


@pytest.mark.parametrize("seed", FCFR_SEEDS)
def test_fcfr_parity(seed):
    prob = random_capacitated_problem(seed, tightness=3.0)
    assert_same_materialized(
        assemble_fcfr_lp(prob, assembly="dict"),
        assemble_fcfr_lp(prob, assembly="array"),
    )
    rd = solve_fcfr(prob, assembly="dict")
    ra = solve_fcfr(prob, assembly="array")
    assert rd.cost == ra.cost  # bit-identical, not approx
    assert dict(rd.solution.placement.items()) == dict(ra.solution.placement.items())
    assert rd.solution.routing.paths.keys() == ra.solution.routing.paths.keys()


def test_fcfr_parity_with_context():
    prob = random_capacitated_problem(3, tightness=3.0)
    ctx = SolverContext.from_problem(prob)
    rd = solve_fcfr(prob, assembly="dict", context=ctx)
    ra = solve_fcfr(prob, assembly="array", context=ctx)
    assert rd.cost == ra.cost


@pytest.mark.parametrize("seed", LP7_SEEDS)
def test_lp7_parity(seed):
    prob = random_uncapacitated_problem(seed)
    assert_same_materialized(
        assemble_lp7(prob, assembly="dict"),
        assemble_lp7(prob, assembly="array"),
    )
    rd = algorithm1(prob, assembly="dict", polish=False)
    ra = algorithm1(prob, assembly="array", polish=False)
    assert rd.lp_objective == ra.lp_objective
    assert rd.fractional_placement == ra.fractional_placement
    assert dict(rd.solution.placement.items()) == dict(ra.solution.placement.items())


def test_lp7_parity_with_context():
    prob = random_uncapacitated_problem(1)
    ctx = SolverContext.from_problem(prob)
    rd = algorithm1(prob, assembly="dict", polish=False, context=ctx)
    ra = algorithm1(prob, assembly="array", polish=False, context=ctx)
    assert rd.lp_objective == ra.lp_objective
    assert rd.fractional_placement == ra.fractional_placement


def _random_flow_graph(seed: int) -> tuple[nx.DiGraph, dict]:
    rng = np.random.default_rng(seed)
    base = seed
    while True:
        g = nx.gnp_random_graph(8, 0.4, seed=base, directed=True)
        base += 10_000
        if g.number_of_edges() and nx.is_strongly_connected(g):
            break
    demands = {}
    for s in (4, 5, 6, 7):
        if rng.random() < 0.8:
            demands[s] = float(rng.integers(1, 6))
    if not demands:
        demands[5] = 2.0
    total = sum(demands.values())
    for u, v in g.edges:
        g.edges[u, v]["cost"] = float(rng.integers(1, 10))
        g.edges[u, v]["capacity"] = float(total) * 2.0
    return g, demands


@pytest.mark.parametrize("seed", MSUFP_SEEDS)
def test_msufp_routing_lp_parity(seed):
    graph, demands = _random_flow_graph(seed)
    fd, cd = min_cost_single_source_flow(graph, 0, demands, assembly="dict")
    fa, ca = min_cost_single_source_flow(
        graph, 0, demands, assembly="array", incidence=arc_incidence(graph)
    )
    assert cd == ca  # bit-identical
    assert fd == fa


def test_multicommodity_parity():
    graph, demands = _random_flow_graph(2)
    from repro.flow.mincost import Commodity

    commodities = [
        Commodity(name=f"c{s}", source=0, demands={s: d})
        for s, d in demands.items()
    ]
    fd, cd = min_cost_multicommodity_flow(graph, commodities, assembly="dict")
    fa, ca = min_cost_multicommodity_flow(graph, commodities, assembly="array")
    assert cd == ca
    assert fd == fa
