"""Tests for ProblemInstance validation and helpers."""

import pytest

from repro.core import ProblemInstance, pin_full_catalog
from repro.exceptions import InvalidProblemError
from repro.graph import line_topology

from tests.core.conftest import make_line_problem


class TestValidation:
    def test_valid_instance(self):
        prob = make_line_problem()
        assert len(prob.catalog) == 2
        assert prob.total_demand == pytest.approx(6.0)

    def test_empty_catalog_rejected(self):
        with pytest.raises(InvalidProblemError):
            ProblemInstance(line_topology(3), (), {})

    def test_duplicate_catalog_rejected(self):
        with pytest.raises(InvalidProblemError):
            ProblemInstance(line_topology(3), ("a", "a"), {})

    def test_unknown_demand_item_rejected(self):
        with pytest.raises(InvalidProblemError):
            ProblemInstance(line_topology(3), ("a",), {("zz", 1): 1.0})

    def test_unknown_demand_node_rejected(self):
        with pytest.raises(InvalidProblemError):
            ProblemInstance(line_topology(3), ("a",), {("a", 99): 1.0})

    def test_nonpositive_rate_rejected(self):
        with pytest.raises(InvalidProblemError):
            ProblemInstance(line_topology(3), ("a",), {("a", 1): 0.0})

    def test_missing_item_sizes_rejected(self):
        with pytest.raises(InvalidProblemError):
            ProblemInstance(
                line_topology(3), ("a", "b"), {("a", 1): 1.0}, item_sizes={"a": 1.0}
            )

    def test_nonpositive_size_rejected(self):
        with pytest.raises(InvalidProblemError):
            ProblemInstance(
                line_topology(3), ("a",), {("a", 1): 1.0}, item_sizes={"a": 0.0}
            )

    def test_pinned_unknown_node_rejected(self):
        with pytest.raises(InvalidProblemError):
            ProblemInstance(
                line_topology(3), ("a",), {("a", 1): 1.0}, pinned={(99, "a")}
            )

    def test_pinned_unknown_item_rejected(self):
        with pytest.raises(InvalidProblemError):
            ProblemInstance(
                line_topology(3), ("a",), {("a", 1): 1.0}, pinned={(0, "zz")}
            )


class TestHelpers:
    def test_requests_sorted_deterministically(self):
        prob = make_line_problem()
        assert prob.requests == sorted(prob.demand, key=repr)

    def test_size_of_defaults_to_one(self):
        prob = make_line_problem()
        assert prob.size_of(prob.catalog[0]) == 1.0
        assert prob.is_homogeneous()

    def test_heterogeneous_sizes(self):
        net = line_topology(3)
        prob = ProblemInstance(
            net, ("a", "b"), {("a", 1): 1.0}, item_sizes={"a": 2.0, "b": 5.0}
        )
        assert prob.size_of("b") == 5.0
        assert not prob.is_homogeneous()

    def test_uniform_sizes_count_as_homogeneous(self):
        net = line_topology(3)
        prob = ProblemInstance(
            net, ("a", "b"), {("a", 1): 1.0}, item_sizes={"a": 3.0, "b": 3.0}
        )
        assert prob.is_homogeneous()

    def test_pinned_lookups(self):
        prob = make_line_problem()
        assert prob.pinned_items_at(0) == set(prob.catalog)
        assert prob.pinned_holders(prob.catalog[0]) == {0}
        assert prob.pinned_items_at(1) == set()

    def test_pin_full_catalog(self):
        pins = pin_full_catalog(("a", "b"), [0, 1])
        assert pins == frozenset({(0, "a"), (0, "b"), (1, "a"), (1, "b")})

    def test_with_demand_preserves_everything_else(self):
        prob = make_line_problem()
        other = prob.with_demand({(prob.catalog[0], 2): 3.0})
        assert other.total_demand == pytest.approx(3.0)
        assert other.pinned == prob.pinned
        assert other.network is prob.network

    def test_requesters_of(self):
        prob = make_line_problem()
        assert prob.requesters_of(prob.catalog[0]) == [4]

    def test_repr(self):
        assert "|C|=2" in repr(make_line_problem())
