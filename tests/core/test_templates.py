"""Solver-level LP templates: MMSFP and FC-FR patched solves vs. fresh ones.

The templates reuse one frozen LP across placements (MMSFP) or capacity
scenarios (FC-FR).  MMSFP's template LP has extra always-closed columns, so
its *cost* must match the per-placement assembly exactly while the flow
split may be a different optimal vertex; FC-FR's template patches pure rhs
rows, so its solves are asserted bit-identical to fresh assemblies.
"""

import numpy as np
import pytest

from repro.core import (
    FCFRTemplate,
    MMSFPTemplate,
    Placement,
    ProblemInstance,
    alternating_optimization,
    fcfr_capacity_sweep,
    mmsfp_routing,
    routing_cost,
    solve_fcfr,
)
from repro.core.submodular import greedy_rnr_placement
from repro.exceptions import InfeasibleError, InvalidProblemError
from tests.core.conftest import random_uncapacitated_problem


def recapacitated(problem, link_over=None, cache_over=None) -> ProblemInstance:
    network = problem.network.copy()
    for (u, v), cap in (link_over or {}).items():
        network.set_link_capacity(u, v, cap)
    for v, cap in (cache_over or {}).items():
        network.set_cache_capacity(v, cap)
    return ProblemInstance(
        network=network,
        catalog=problem.catalog,
        demand=dict(problem.demand),
        item_sizes=dict(problem.item_sizes) if problem.item_sizes else None,
        pinned=frozenset(problem.pinned),
    )


def capacitated_problem(seed: int, slack: float = 2.0) -> ProblemInstance:
    problem = random_uncapacitated_problem(seed)
    total = sum(problem.demand.values())
    rng = np.random.default_rng(seed + 77)
    for (u, v) in list(problem.network.graph.edges):
        problem.network.set_link_capacity(
            u, v, float(total * rng.uniform(slack, 2 * slack))
        )
    return problem


class TestMMSFPTemplate:
    @pytest.mark.parametrize("seed", range(6))
    def test_cost_matches_fresh_assembly(self, seed):
        problem = random_uncapacitated_problem(seed)
        template = MMSFPTemplate(problem)
        for placement in (
            Placement(),  # origin-only
            greedy_rnr_placement(problem),
        ):
            fresh = mmsfp_routing(problem, placement)
            patched = template.solve(placement)
            assert patched.cost == pytest.approx(fresh.cost, rel=1e-9, abs=1e-9)
            # The returned routing must actually realize that cost.
            assert routing_cost(problem, patched.routing) == pytest.approx(
                patched.cost, rel=1e-6
            )

    def test_repatching_is_stateless(self):
        problem = random_uncapacitated_problem(1)
        template = MMSFPTemplate(problem)
        empty_cost = template.solve(Placement()).cost
        template.solve(greedy_rnr_placement(problem))
        assert template.solve(Placement()).cost == empty_cost

    def test_alternating_with_template_matches_cost(self):
        problem = random_uncapacitated_problem(2)
        plain = alternating_optimization(problem, integral_routing=False)
        fast = alternating_optimization(
            problem, integral_routing=False, lp_template=True
        )
        plain_cost = routing_cost(problem, plain.solution.routing)
        fast_cost = routing_cost(problem, fast.solution.routing)
        assert fast_cost == pytest.approx(plain_cost, rel=1e-6)


class TestFCFRTemplate:
    @pytest.mark.parametrize("seed", range(4))
    def test_baseline_solve_bit_identical(self, seed):
        problem = capacitated_problem(seed)
        fresh = solve_fcfr(problem)
        patched = FCFRTemplate(problem).solve()
        assert patched.cost == fresh.cost
        assert dict(patched.solution.placement) == dict(fresh.solution.placement)

    @pytest.mark.parametrize("seed", range(4))
    def test_capacity_override_bit_identical(self, seed):
        problem = capacitated_problem(seed)
        template = FCFRTemplate(problem)
        rng = np.random.default_rng(seed)
        edges = template._meta.link_edges
        total = sum(problem.demand.values())
        link_over = {edges[int(rng.integers(len(edges)))]: float(total)}
        patched = template.solve(link_capacities=link_over)
        fresh = solve_fcfr(recapacitated(problem, link_over=link_over))
        assert patched.cost == fresh.cost

    def test_scenarios_do_not_leak(self):
        problem = capacitated_problem(0)
        template = FCFRTemplate(problem)
        baseline = template.solve().cost
        edges = template._meta.link_edges
        template.solve(
            link_capacities={edges[0]: sum(problem.demand.values()) * 0.8}
        )
        assert template.solve().cost == baseline

    def test_sweep_matches_per_scenario_solves(self):
        problem = capacitated_problem(1)
        total = sum(problem.demand.values())
        template = FCFRTemplate(problem)
        edges = template._meta.link_edges
        scenarios = [
            {},
            {"link": {edges[0]: total * 1.2}},
            {"link": {edges[-1]: total * 0.9}},
        ]
        swept = fcfr_capacity_sweep(problem, scenarios)
        for scenario, result in zip(scenarios, swept):
            fresh = solve_fcfr(
                recapacitated(problem, link_over=scenario.get("link"))
            )
            assert result.cost == fresh.cost

    def test_override_outside_template_rejected(self):
        problem = capacitated_problem(2)
        template = FCFRTemplate(problem)
        with pytest.raises(InvalidProblemError):
            template.solve(link_capacities={("nope", "nope2"): 1.0})

    def test_infinite_override_rejected(self):
        problem = capacitated_problem(2)
        template = FCFRTemplate(problem)
        edge = template._meta.link_edges[0]
        with pytest.raises(InvalidProblemError):
            template.solve(link_capacities={edge: float("inf")})

    def test_infeasible_scenario_raises(self):
        problem = capacitated_problem(3)
        template = FCFRTemplate(problem)
        squeeze = {e: 0.0 for e in template._meta.link_edges}
        with pytest.raises(InfeasibleError):
            template.solve(link_capacities=squeeze)
