"""Shared fixtures and brute-force reference solvers for core tests."""

import itertools

import numpy as np
import pytest

from repro.core import (
    ProblemInstance,
    ShortestPathCache,
    pin_full_catalog,
)
from repro.graph import CacheNetwork, line_topology


def make_line_problem(
    *,
    num_nodes: int = 5,
    catalog_size: int = 2,
    cache_nodes: dict | None = None,
    demand: dict | None = None,
    link_capacity: float | None = None,
) -> ProblemInstance:
    """Line 0-1-...-n-1 with the origin pinned at node 0."""
    net = line_topology(num_nodes)
    if link_capacity is not None:
        net.set_uniform_link_capacity(link_capacity)
    for v, c in (cache_nodes or {}).items():
        net.set_cache_capacity(v, c)
    catalog = tuple(f"item{k}" for k in range(catalog_size))
    if demand is None:
        demand = {(catalog[0], num_nodes - 1): 5.0, (catalog[-1], num_nodes - 1): 1.0}
    return ProblemInstance(
        network=net,
        catalog=catalog,
        demand=demand,
        pinned=pin_full_catalog(catalog, [0]),
    )


def random_uncapacitated_problem(seed: int) -> ProblemInstance:
    """Small random instance with unlimited link capacities (for Alg 1 tests)."""
    rng = np.random.default_rng(seed)
    import networkx as nx

    while True:
        g = nx.gnp_random_graph(6, 0.5, seed=seed, directed=True)
        seed += 10_000
        if g.number_of_edges() and nx.is_strongly_connected(g):
            break
    for u, v in g.edges:
        g.edges[u, v]["cost"] = float(rng.integers(1, 10))
        g.edges[u, v]["capacity"] = float("inf")
    net = CacheNetwork(g)
    catalog = ("A", "B", "C")
    caches = {1: 1, 2: 1}
    for v, c in caches.items():
        net.set_cache_capacity(v, c)
    demand = {}
    for item in catalog:
        for s in (3, 4, 5):
            if rng.random() < 0.7:
                demand[(item, s)] = float(rng.integers(1, 8))
    if not demand:
        demand[("A", 3)] = 2.0
    return ProblemInstance(
        network=net, catalog=catalog, demand=demand,
        pinned=pin_full_catalog(catalog, [0]),
    )


def brute_force_rnr_optimum(problem: ProblemInstance) -> float:
    """Exact optimal IC-IR cost under unlimited link capacities.

    Enumerates every integral placement within cache capacities and serves
    each request from its nearest replica (optimal routing in this regime).
    """
    sp = ShortestPathCache(problem)
    cache_nodes = [
        v
        for v in problem.network.cache_nodes()
        if problem.network.cache_capacity(v) > 0
    ]
    per_node_options = []
    for v in cache_nodes:
        cap = int(problem.network.cache_capacity(v))
        options = []
        items = [i for i in problem.catalog if (v, i) not in problem.pinned]
        for k in range(0, min(cap, len(items)) + 1):
            options.extend(itertools.combinations(items, k))
        per_node_options.append(options)

    best = float("inf")
    for combo in itertools.product(*per_node_options):
        holders: dict = {}
        for v, chosen in zip(cache_nodes, combo):
            for i in chosen:
                holders.setdefault(i, set()).add(v)
        cost = 0.0
        for (item, s), rate in problem.demand.items():
            candidates = set(holders.get(item, set())) | problem.pinned_holders(item)
            d = min(sp.distance(v, s) for v in candidates)
            cost += rate * d
        best = min(best, cost)
    return best


@pytest.fixture
def line_problem():
    return make_line_problem(cache_nodes={3: 1})
