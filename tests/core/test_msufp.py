"""Tests for Algorithm 2 / MSUFP and the binary-cache-capacity reduction."""

import networkx as nx
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import (
    MSUFPCommodity,
    ProblemInstance,
    check_feasibility,
    pin_full_catalog,
    routing_cost,
    solve_binary_cache_case,
    solve_msufp,
    splittable_binary_cache,
    theorem_4_7_load_bound,
)
from repro.core.msufp import _round_demand
from repro.exceptions import InfeasibleError, InvalidProblemError
from repro.graph import line_topology


def tight_parallel_graph():
    g = nx.DiGraph()
    g.add_edge("s", "a", cost=1.0, capacity=6.0)
    g.add_edge("a", "t", cost=1.0, capacity=6.0)
    g.add_edge("s", "b", cost=2.0, capacity=6.0)
    g.add_edge("b", "t", cost=2.0, capacity=6.0)
    g.add_edge("s", "t", cost=50.0, capacity=100.0)
    return g


class TestDemandRounding:
    def test_round_down_within_factor(self):
        lam_max = 8.0
        for value in (0.3, 1.0, 2.5, 5.0, 7.9):
            for K in (1, 2, 5, 20):
                rounded, m = _round_demand(value, lam_max, K)
                assert rounded <= value + 1e-12
                assert rounded >= value * 2 ** (-1.0 / K) - 1e-12

    def test_max_demand_special_case(self):
        rounded, m = _round_demand(4.0, 4.0, 3)
        assert m == -1
        assert rounded == pytest.approx(4.0 * 2 ** (-1 / 3))

    def test_group_ratios_are_powers_of_two(self):
        lam_max = 10.0
        K = 4
        values = [0.11, 0.5, 1.7, 2.2, 3.9, 6.4, 10.0]
        groups: dict = {}
        for v in values:
            rounded, m = _round_demand(v, lam_max, K)
            groups.setdefault(m % K, []).append(rounded)
        import math

        for members in groups.values():
            base = min(members)
            for r in members:
                ratio = math.log2(r / base)
                assert abs(ratio - round(ratio)) < 1e-9


class TestSolveMSUFP:
    def test_empty(self):
        result = solve_msufp(tight_parallel_graph(), "s", [], K=2)
        assert result.paths == {}

    def test_invalid_k(self):
        with pytest.raises(InvalidProblemError):
            solve_msufp(tight_parallel_graph(), "s", [MSUFPCommodity("c", "t", 1.0)], K=0)

    def test_duplicate_ids(self):
        with pytest.raises(InvalidProblemError):
            solve_msufp(
                tight_parallel_graph(),
                "s",
                [MSUFPCommodity("c", "t", 1.0), MSUFPCommodity("c", "t", 2.0)],
            )

    def test_nonpositive_demand(self):
        with pytest.raises(InvalidProblemError):
            solve_msufp(
                tight_parallel_graph(), "s", [MSUFPCommodity("c", "t", -1.0)]
            )

    def test_infeasible_demand(self):
        with pytest.raises(InfeasibleError):
            solve_msufp(
                tight_parallel_graph(), "s", [MSUFPCommodity("c", "t", 1000.0)]
            )

    def test_cost_never_exceeds_splittable(self):
        comms = [MSUFPCommodity(f"c{k}", "t", 1.3 + 0.7 * k) for k in range(6)]
        for K in (1, 2, 4, 16):
            result = solve_msufp(tight_parallel_graph(), "s", comms, K=K)
            assert result.unsplittable_cost <= result.splittable_cost + 1e-6

    def test_theorem_4_7_load_bound_holds(self):
        comms = [MSUFPCommodity(f"c{k}", "t", 0.9 + 0.55 * k) for k in range(7)]
        g = tight_parallel_graph()
        lam_max = max(c.demand for c in comms)
        for K in (1, 2, 8, 64):
            result = solve_msufp(g, "s", comms, K=K)
            loads = result.link_loads({c.id: c.demand for c in comms})
            for e, load in loads.items():
                cap = g.edges[e]["capacity"]
                assert load <= theorem_4_7_load_bound(K, lam_max, cap) + 1e-6

    def test_every_commodity_routed_to_its_sink(self):
        comms = [
            MSUFPCommodity("x", "t", 2.0),
            MSUFPCommodity("y", "a", 1.0),
            MSUFPCommodity("z", "b", 0.5),
        ]
        result = solve_msufp(tight_parallel_graph(), "s", comms, K=3)
        for c in comms:
            assert result.paths[c.id][0] == "s"
            assert result.paths[c.id][-1] == c.sink

    def test_load_bound_structure(self):
        """Bound = additive term (grows ~K/(2 ln 2) * lambda_max) + 2^(1/K) * c.

        The capacity multiplier decreases toward 1 with K — that is the
        (1 + eps, 1) result when lambda_max << c_min; the additive term grows
        with K, which is why the guarantee targets small demands.
        """
        multipliers = [theorem_4_7_load_bound(K, 0.0, 1.0) for K in (1, 2, 10, 1000)]
        assert multipliers == sorted(multipliers, reverse=True)
        assert multipliers[-1] == pytest.approx(1.0, abs=1e-3)
        additive = [theorem_4_7_load_bound(K, 1.0, 0.0) for K in (1, 2, 10, 1000)]
        assert additive == sorted(additive)

    def test_k_equal_one_cost_near_optimal(self):
        """K=1 (not used by the paper) rounds demands by up to 2x; the cost
        bound's premise (inequality (30)) can then fail by a sliver.  We keep
        it within 1% on the known adversarial seed."""
        import random as _random

        rng = _random.Random(277)
        g = nx.gnp_random_graph(9, 0.45, seed=277, directed=True)
        for u, v in g.edges:
            g.edges[u, v]["cost"] = rng.uniform(1, 8)
            g.edges[u, v]["capacity"] = rng.uniform(4, 12)
        sinks = sorted(nx.descendants(g, 0))
        comms = [
            MSUFPCommodity(f"c{k}", sinks[k % len(sinks)], rng.uniform(0.2, 2.5))
            for k in range(8)
        ]
        result = solve_msufp(g, 0, comms, K=1)
        assert result.unsplittable_cost <= result.splittable_cost * 1.01

    @settings(max_examples=15, deadline=None)
    @given(
        st.integers(min_value=0, max_value=400),
        st.integers(min_value=2, max_value=12),
    )
    def test_guarantees_on_random_graphs(self, seed, K):
        rng = __import__("random").Random(seed)
        g = nx.gnp_random_graph(9, 0.45, seed=seed, directed=True)
        for u, v in g.edges:
            g.edges[u, v]["cost"] = rng.uniform(1, 8)
            g.edges[u, v]["capacity"] = rng.uniform(4, 12)
        if 0 not in g:
            return
        sinks = sorted(nx.descendants(g, 0))
        if not sinks:
            return
        comms = [
            MSUFPCommodity(f"c{k}", sinks[k % len(sinks)], rng.uniform(0.2, 2.5))
            for k in range(8)
        ]
        try:
            result = solve_msufp(g, 0, comms, K=K)
        except InfeasibleError:
            return
        lam_max = max(c.demand for c in comms)
        assert result.unsplittable_cost <= result.splittable_cost + 1e-6
        loads = result.link_loads({c.id: c.demand for c in comms})
        for e, load in loads.items():
            cap = g.edges[e]["capacity"]
            assert load <= theorem_4_7_load_bound(K, lam_max, cap) + 1e-6


class TestBinaryCacheCase:
    def _problem(self, link_capacity=10.0):
        net = line_topology(5)
        net.set_uniform_link_capacity(link_capacity)
        catalog = ("a", "b")
        demand = {("a", 2): 2.0, ("b", 4): 1.0}
        pinned = pin_full_catalog(catalog, [0, 3])
        return ProblemInstance(net, catalog, demand, pinned=pinned)

    def test_serves_from_nearest_server(self):
        prob = self._problem()
        solution, result = solve_binary_cache_case(prob, [0, 3], K=2)
        # requester 2: server 0 at distance 2, server 3 at distance 1.
        assert solution.routing.paths[("a", 2)][0].source == 3
        assert solution.routing.paths[("b", 4)][0].source == 3
        assert check_feasibility(prob, solution).feasible

    def test_splittable_lower_bound(self):
        prob = self._problem(link_capacity=2.0)
        frac_solution, frac_cost = splittable_binary_cache(prob, [0, 3])
        int_solution, result = solve_binary_cache_case(prob, [0, 3], K=4)
        assert frac_cost <= routing_cost(prob, int_solution.routing) + 1e-6
        assert result.splittable_cost == pytest.approx(frac_cost)
        assert check_feasibility(prob, frac_solution).feasible

    def test_server_without_catalog_rejected(self):
        prob = self._problem()
        with pytest.raises(InvalidProblemError):
            solve_binary_cache_case(prob, [0, 1], K=2)

    def test_self_serving_server(self):
        net = line_topology(3)
        catalog = ("a",)
        demand = {("a", 0): 1.0}
        prob = ProblemInstance(
            net, catalog, demand, pinned=pin_full_catalog(catalog, [0])
        )
        solution, _ = solve_binary_cache_case(prob, [0], K=2)
        assert solution.routing.paths[("a", 0)][0].path == (0,)
