"""Tests for route-to-nearest-replica routing."""

import pytest

from repro.core import (
    Placement,
    check_feasibility,
    route_to_nearest_replica,
    routing_cost,
    Solution,
)
from repro.exceptions import InfeasibleError

from tests.core.conftest import make_line_problem


class TestRNR:
    def test_serves_from_origin_when_nothing_cached(self):
        prob = make_line_problem()
        routing = route_to_nearest_replica(prob, Placement())
        for (item, s), pfs in routing.paths.items():
            assert len(pfs) == 1
            assert pfs[0].source == 0
            assert pfs[0].sink == s
        assert routing_cost(prob, routing) == pytest.approx(24.0)

    def test_prefers_nearer_replica(self):
        prob = make_line_problem(cache_nodes={3: 1})
        item = prob.catalog[0]
        routing = route_to_nearest_replica(prob, Placement({(3, item): 1.0}))
        assert routing.paths[(item, 4)][0].source == 3
        # The other item still comes from the origin.
        assert routing.paths[(prob.catalog[1], 4)][0].source == 0

    def test_self_cache_serves_at_zero_cost(self):
        prob = make_line_problem(cache_nodes={4: 1})
        item = prob.catalog[0]
        routing = route_to_nearest_replica(prob, Placement({(4, item): 1.0}))
        assert routing.paths[(item, 4)][0].path == (4,)

    def test_fractional_placement_spreads_over_holders(self):
        prob = make_line_problem(cache_nodes={3: 1, 4: 1})
        item = prob.catalog[0]
        placement = Placement({(4, item): 0.3, (3, item): 0.5})
        routing = route_to_nearest_replica(prob, placement)
        paths = routing.paths[(item, 4)]
        amounts = {pf.source: pf.amount for pf in paths}
        assert amounts[4] == pytest.approx(0.3)
        assert amounts[3] == pytest.approx(0.5)
        assert amounts[0] == pytest.approx(0.2)  # remainder from the origin

    def test_routing_is_feasible(self):
        prob = make_line_problem(cache_nodes={3: 1})
        item = prob.catalog[0]
        placement = Placement({(3, item): 1.0})
        routing = route_to_nearest_replica(prob, placement)
        report = check_feasibility(prob, Solution(placement, routing))
        assert report.feasible

    def test_infeasible_without_any_holder(self):
        prob = make_line_problem()
        prob = prob.__class__(
            network=prob.network,
            catalog=prob.catalog,
            demand=prob.demand,
            pinned=frozenset(),  # no origin
        )
        with pytest.raises(InfeasibleError):
            route_to_nearest_replica(prob, Placement())

    def test_ignores_sub_eps_fractions(self):
        prob = make_line_problem(cache_nodes={3: 1})
        item = prob.catalog[0]
        placement = Placement({(3, item): 1e-12})
        routing = route_to_nearest_replica(prob, placement)
        assert routing.paths[(item, 4)][0].source == 0
