"""Cluster-decomposed solving: partition, stitching, composition, gap."""

import math

import networkx as nx
import numpy as np
import pytest

from repro.core import (
    ProblemInstance,
    SolverContext,
    check_feasibility,
    cluster_subproblem,
    decomposed_solve,
    decomposition_gap,
    default_cluster_count,
    partition_graph,
    pin_full_catalog,
    super_topology,
)
from repro.exceptions import InvalidProblemError
from repro.graph import CacheNetwork, LazyRowBackend, deltacom, tinet, tree_topology


def make_problem(net, n_items=5, n_requesters=8, cache_cap=2.0, seed=7):
    nodes = list(net.nodes)
    items = [f"it{k}" for k in range(n_items)]
    rng = np.random.default_rng(seed)
    demand = {}
    for it in items:
        for s in rng.choice(len(nodes), size=n_requesters, replace=False):
            demand[(it, nodes[int(s)])] = float(rng.uniform(0.5, 2.0))
    capped = CacheNetwork(net.graph, {v: cache_cap for v in nodes})
    return ProblemInstance(
        network=capped,
        catalog=tuple(items),
        demand=demand,
        pinned=pin_full_catalog(items, [nodes[0]]),
    )


class TestPartition:
    @pytest.mark.parametrize("factory,k", [(tinet, 4), (deltacom, 6)])
    def test_clusters_connected_and_cover(self, factory, k):
        net = factory()
        part = partition_graph(net, k, seed=0)
        assert part.n_clusters == k
        covered = [v for c in part.clusters for v in c]
        assert sorted(covered, key=repr) == sorted(net.nodes, key=repr)
        assert len(covered) == len(set(covered))
        und = net.graph.to_undirected()
        for cluster in part.clusters:
            assert nx.is_connected(und.subgraph(cluster))

    def test_deterministic_under_seed(self):
        net = deltacom()
        a = partition_graph(net, 5, seed=42)
        b = partition_graph(net, 5, seed=42)
        assert a.labels == b.labels
        assert a.seeds == b.seeds
        # only the first balloon seed is randomized; over a few seeds the
        # pick must actually vary
        firsts = {partition_graph(net, 5, seed=s).seeds[0] for s in range(6)}
        assert len(firsts) > 1

    def test_balanced_sizes(self):
        part = partition_graph(deltacom(), 6, seed=0)
        sizes = part.sizes()
        # round-robin node claiming keeps clusters within a small factor
        assert max(sizes) <= 2 * min(sizes) + 2

    def test_labels_match_clusters(self):
        part = partition_graph(tinet(), 3, seed=1)
        for cid, cluster in enumerate(part.clusters):
            assert all(part.labels[v] == cid for v in cluster)

    def test_default_cluster_count(self):
        assert default_cluster_count(4) == 2
        assert default_cluster_count(10_000) == 50

    def test_invalid_counts_raise(self):
        net = tinet()
        with pytest.raises(InvalidProblemError):
            partition_graph(net, 0)
        with pytest.raises(InvalidProblemError):
            partition_graph(net, net.num_nodes + 1)

    def test_single_cluster_is_whole_graph(self):
        net = tinet()
        part = partition_graph(net, 1, seed=0)
        assert part.sizes() == [net.num_nodes]


class TestSuperTopology:
    def test_quotient_shape_and_capacity(self):
        net = CacheNetwork(deltacom().graph, {v: 1.5 for v in deltacom().nodes})
        part = partition_graph(net, 4, seed=0)
        quotient = super_topology(net, part)
        assert quotient.num_nodes == 4
        assert nx.is_strongly_connected(quotient.graph)
        total = sum(quotient.cache_capacity(c) for c in quotient.nodes)
        assert total == pytest.approx(1.5 * net.num_nodes)

    def test_super_link_cost_is_cheapest_crossing(self):
        net = tinet()
        part = partition_graph(net, 3, seed=0)
        quotient = super_topology(net, part)
        for u, v in quotient.edges:
            crossing = [
                net.cost(a, b)
                for a, b in net.edges
                if part.labels[a] == u and part.labels[b] == v
            ]
            assert quotient.cost(u, v) == min(crossing)


class TestSubproblem:
    def test_stitching_prices_true_external_cost(self):
        problem = make_problem(tinet())
        part = partition_graph(problem.network, 4, seed=0)
        lazy = LazyRowBackend(problem.network.graph)
        holders = sorted({v for (v, _i) in problem.pinned}, key=repr)
        rows = {h: lazy.row(lazy.index[h]) for h in holders}
        built = 0
        for cid in range(part.n_clusters):
            sub = cluster_subproblem(problem, part, cid, rows, lazy.index)
            if sub is None:
                continue
            built += 1
            member_set = set(part.clusters[cid])
            # every demand entry lives in the cluster
            assert all(s in member_set for (_i, s) in sub.demand)
            # virtual origins price the true holder->boundary cost
            for u, v in sub.network.edges:
                if isinstance(u, tuple):
                    true = min(float(rows[h][lazy.index[v]]) for h in holders)
                    assert sub.network.cost(u, v) == true
            # every request keeps a reachable pinned holder after stitching
            for (i, s) in sub.demand:
                assert any(
                    nx.has_path(sub.network.graph, h, s)
                    for h in sub.pinned_holders(i)
                )
        assert built >= 1

    def test_cluster_without_demand_is_skipped(self):
        net = tree_topology(2, 3)
        nodes = list(net.nodes)
        capped = CacheNetwork(net.graph, {v: 1.0 for v in nodes})
        problem = ProblemInstance(
            network=capped,
            catalog=("a",),
            demand={("a", nodes[-1]): 1.0},
            pinned=frozenset({(nodes[0], "a")}),
        )
        part = partition_graph(capped, 3, seed=0)
        lazy = LazyRowBackend(capped.graph)
        rows = {nodes[0]: lazy.row(lazy.index[nodes[0]])}
        subs = [
            cluster_subproblem(problem, part, cid, rows, lazy.index)
            for cid in range(part.n_clusters)
        ]
        assert sum(s is not None for s in subs) < part.n_clusters


class TestDecomposedSolve:
    def test_feasible_composed_solution(self):
        problem = make_problem(tinet())
        res = decomposed_solve(problem, n_clusters=4, seed=0, parallel=False)
        report = check_feasibility(problem, res.solution)
        assert report.feasible, report.violations
        assert math.isfinite(res.cost) and res.cost > 0
        assert len(res.reports) >= 1
        # no virtual origin ever leaks into the composed placement
        for (node, _item) in res.solution.placement:
            assert node in problem.network

    def test_serial_parallel_identical(self):
        problem = make_problem(tinet(), seed=3)
        a = decomposed_solve(problem, n_clusters=3, seed=0, parallel=False)
        b = decomposed_solve(problem, n_clusters=3, seed=0, parallel=True)
        assert a.cost == b.cost
        assert dict(a.solution.placement.items()) == dict(b.solution.placement.items())

    def test_gap_within_documented_bound(self):
        problem = make_problem(deltacom(), n_items=6, n_requesters=10)
        gap = decomposition_gap(problem, n_clusters=5, seed=0)
        # documented bound (DESIGN.md 5.10): <= 20% above the exact
        # Algorithm 1 cost on mid-size instances; often negative because
        # Algorithm 1 is itself approximate.
        assert gap.relative_gap <= 0.20
        assert gap.exact_cost > 0 and gap.decomposed_cost > 0
        assert sum(gap.cluster_sizes) == problem.network.num_nodes

    def test_explicit_context_is_used_for_routing(self):
        problem = make_problem(tinet(), seed=5)
        ctx = SolverContext.from_problem(problem, backend="lazy")
        res = decomposed_solve(
            problem, n_clusters=3, seed=0, parallel=False, context=ctx
        )
        base = decomposed_solve(problem, n_clusters=3, seed=0, parallel=False)
        assert res.cost == base.cost

    def test_default_cluster_count_path(self):
        problem = make_problem(tinet(), seed=9)
        res = decomposed_solve(problem, parallel=False)
        assert res.partition.n_clusters == default_cluster_count(
            problem.network.num_nodes
        )
