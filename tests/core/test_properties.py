"""Cross-cutting property tests on randomized capacitated instances.

These pin down relationships the paper relies on but never states as
testable facts: fractional routing lower-bounds integral routing for the
same placement, RNR is the optimal routing when links are uncapacitated,
accepted alternating iterations are monotone in cost, and the pipage /
greedy placement machinery never violates capacities.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import (
    Placement,
    alternating_optimization,
    check_feasibility,
    congestion,
    greedy_rnr_placement,
    mmsfp_routing,
    mmufp_routing,
    optimize_placement,
    route_to_nearest_replica,
    routing_cost,
    Solution,
)
from repro.core.problem import ProblemInstance, pin_full_catalog
from repro.exceptions import InfeasibleError
from repro.graph import CacheNetwork


def random_capacitated_problem(seed: int, *, tightness: float = 0.5):
    """Small random connected instance with finite link capacities."""
    import networkx as nx

    rng = np.random.default_rng(seed)
    base = seed
    while True:
        g = nx.gnp_random_graph(7, 0.45, seed=base, directed=True)
        base += 10_000
        if g.number_of_edges() and nx.is_strongly_connected(g):
            break
    catalog = ("A", "B", "C")
    demand = {}
    for item in catalog:
        for s in (3, 4, 5):
            if rng.random() < 0.7:
                demand[(item, s)] = float(rng.integers(1, 6))
    if not demand:
        demand[("A", 4)] = 2.0
    total = sum(demand.values())
    for u, v in g.edges:
        g.edges[u, v]["cost"] = float(rng.integers(1, 12))
        g.edges[u, v]["capacity"] = max(total * tightness, 1.0)
    net = CacheNetwork(g, {1: 1, 2: 2})
    return ProblemInstance(
        network=net, catalog=catalog, demand=demand,
        pinned=pin_full_catalog(catalog, [0]),
    )


class TestRoutingRelations:
    @settings(max_examples=10, deadline=None)
    @given(st.integers(min_value=0, max_value=300))
    def test_mmsfp_lower_bounds_mmufp(self, seed):
        prob = random_capacitated_problem(seed, tightness=1.2)
        placement = greedy_rnr_placement(prob)
        try:
            frac = mmsfp_routing(prob, placement)
        except InfeasibleError:
            return
        integral = mmufp_routing(
            prob, placement, method="best", rng=np.random.default_rng(seed)
        )
        assert frac.cost <= routing_cost(prob, integral) + 1e-6

    @settings(max_examples=10, deadline=None)
    @given(st.integers(min_value=0, max_value=300))
    def test_rnr_is_optimal_routing_when_uncapacitated(self, seed):
        prob = random_capacitated_problem(seed)
        prob = ProblemInstance(
            network=prob.network.uncapacitated(),
            catalog=prob.catalog,
            demand=prob.demand,
            pinned=prob.pinned,
        )
        placement = greedy_rnr_placement(prob)
        rnr = route_to_nearest_replica(prob, placement)
        frac = mmsfp_routing(prob, placement)
        assert frac.cost == pytest.approx(routing_cost(prob, rnr), rel=1e-9)

    @settings(max_examples=8, deadline=None)
    @given(st.integers(min_value=0, max_value=200))
    def test_placement_step_never_violates_capacity(self, seed):
        prob = random_capacitated_problem(seed, tightness=1.5)
        try:
            routing = mmsfp_routing(prob, Placement()).routing
        except InfeasibleError:
            return
        placement = optimize_placement(prob, routing)
        for v in prob.network.cache_nodes():
            assert placement.used_capacity(v, prob) <= (
                prob.network.cache_capacity(v) + 1e-9
            )


class TestAlternatingInvariants:
    @settings(max_examples=8, deadline=None)
    @given(st.integers(min_value=0, max_value=200))
    def test_accepted_costs_monotone_and_final_feasible(self, seed):
        prob = random_capacitated_problem(seed, tightness=1.5)
        try:
            result = alternating_optimization(
                prob, rng=np.random.default_rng(seed), max_iterations=6
            )
        except InfeasibleError:
            return
        accepted = [h["cost"] for h in result.history if h["accepted"]]
        assert accepted == sorted(accepted, reverse=True)
        report = check_feasibility(prob, result.solution)
        assert report.served_ok and report.sources_ok and report.cache_ok

    @settings(max_examples=6, deadline=None)
    @given(st.integers(min_value=0, max_value=100))
    def test_greedy_mmufp_never_congests_when_feasible_exists(self, seed):
        """The greedy router only exceeds capacity when forced to fall back."""
        prob = random_capacitated_problem(seed, tightness=2.0)
        placement = greedy_rnr_placement(prob)
        try:
            mmsfp_routing(prob, placement)  # fractional feasibility witness
        except InfeasibleError:
            return
        routing = mmufp_routing(prob, placement, method="greedy")
        # With tightness 2.0 per-request demands fit residual capacities.
        assert congestion(prob, routing) <= 1 + 1e-6


class TestSolutionEvaluationConsistency:
    @settings(max_examples=8, deadline=None)
    @given(st.integers(min_value=0, max_value=200))
    def test_cost_is_linear_in_demand(self, seed):
        prob = random_capacitated_problem(seed)
        placement = greedy_rnr_placement(prob)
        routing = route_to_nearest_replica(prob, placement)
        base = routing_cost(prob, routing)
        doubled = routing_cost(
            prob, routing, demand={r: 2 * v for r, v in prob.demand.items()}
        )
        assert doubled == pytest.approx(2 * base)

    @settings(max_examples=8, deadline=None)
    @given(st.integers(min_value=0, max_value=200))
    def test_feasibility_report_consistent_with_congestion(self, seed):
        prob = random_capacitated_problem(seed, tightness=0.3)
        placement = greedy_rnr_placement(prob)
        routing = route_to_nearest_replica(prob, placement)
        report = check_feasibility(prob, Solution(placement, routing))
        cong = congestion(prob, routing)
        if cong > 1 + 1e-6:
            assert not report.links_ok
        else:
            assert report.links_ok
