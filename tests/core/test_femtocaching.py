"""Tests for the FemtoCaching reduction (Section 4.1.4)."""

import pytest

from repro.core import (
    algorithm1,
    bipartite_network,
    femtocaching_instance,
    femtocaching_problem,
    routing_cost,
)
from repro.exceptions import InvalidProblemError

from tests.core.conftest import make_line_problem


class TestBipartiteNetwork:
    def test_basic_construction(self):
        net = bipartite_network(
            ["h0", "h1"],
            ["u0"],
            {("h0", "u0"): 1.0, ("h1", "u0"): 2.0},
            helper_capacity=1,
        )
        assert net.cost("h0", "u0") == 1.0
        assert net.cache_capacity("h0") == 1.0
        assert net.cache_capacity("u0") == 0.0

    def test_overlapping_sets_rejected(self):
        with pytest.raises(InvalidProblemError):
            bipartite_network(["x"], ["x"], {}, helper_capacity=1)

    def test_bad_cost_pair_rejected(self):
        with pytest.raises(InvalidProblemError):
            bipartite_network(
                ["h"], ["u"], {("u", "h"): 1.0}, helper_capacity=1
            )


class TestFemtocachingProblem:
    def _classic(self):
        """[32]'s further special case: equal helper costs w1 < origin cost."""
        helpers = ["origin", "h1", "h2"]
        users = ["u1", "u2"]
        costs = {("origin", u): 10.0 for u in users}
        costs.update({(h, u): 1.0 for h in ("h1", "h2") for u in users})
        demand = {("A", "u1"): 5.0, ("B", "u1"): 1.0, ("A", "u2"): 4.0}
        return femtocaching_problem(
            helpers,
            users,
            costs,
            demand,
            catalog=("A", "B"),
            helper_capacity=1,
            origin="origin",
        )

    def test_algorithm1_solves_classic_case(self):
        prob = self._classic()
        result = algorithm1(prob)
        cost = routing_cost(prob, result.solution.routing)
        # Optimum: A on one helper (9 * 1), B on the other (1 * 1).
        assert cost == pytest.approx(9.0 * 1.0 + 1.0 * 1.0)

    def test_origin_must_be_helper(self):
        with pytest.raises(InvalidProblemError):
            femtocaching_problem(
                ["h"], ["u"], {("h", "u"): 1.0}, {("A", "u"): 1.0},
                catalog=("A",), helper_capacity=1, origin="zz",
            )


class TestFemtocachingInstance:
    def test_reduction_preserves_optimal_cost(self):
        """Solving the bipartite abstraction == solving the full network."""
        prob = make_line_problem(cache_nodes={2: 1, 3: 1})
        bipartite = femtocaching_instance(prob)
        full = algorithm1(prob)
        reduced = algorithm1(bipartite)
        assert routing_cost(bipartite, reduced.solution.routing) == pytest.approx(
            routing_cost(prob, full.solution.routing)
        )

    def test_bipartite_nodes_are_tagged(self):
        prob = make_line_problem(cache_nodes={3: 1})
        bipartite = femtocaching_instance(prob)
        for node in bipartite.network.nodes:
            assert node[0] in ("helper", "user")

    def test_logical_costs_are_shortest_paths(self):
        prob = make_line_problem(cache_nodes={3: 1})
        bipartite = femtocaching_instance(prob)
        assert bipartite.network.cost(("helper", 0), ("user", 4)) == pytest.approx(4.0)
        assert bipartite.network.cost(("helper", 3), ("user", 4)) == pytest.approx(1.0)
