"""Tests for the unified solve() front door."""

import numpy as np
import pytest

from repro.core import solve
from repro.exceptions import InvalidProblemError

from tests.core.conftest import make_line_problem


class TestSolveDispatch:
    def test_fcfr(self):
        prob = make_line_problem(cache_nodes={4: 1})
        result = solve(prob, caching="fractional", routing="fractional")
        assert result.regime == "FC-FR"
        assert "LP" in result.method
        assert result.feasible

    def test_icfr(self):
        prob = make_line_problem(cache_nodes={3: 1}, link_capacity=50.0)
        result = solve(prob, caching="integral", routing="fractional")
        assert result.regime == "IC-FR"
        assert result.feasible

    def test_icir_uncapacitated_homogeneous_uses_algorithm1(self):
        prob = make_line_problem(cache_nodes={3: 1})
        result = solve(prob)
        assert result.regime == "IC-IR"
        assert "Algorithm 1" in result.method
        assert result.solution.placement.is_integral()

    def test_icir_uncapacitated_hetero_uses_greedy(self):
        from repro.core import ProblemInstance, pin_full_catalog
        from repro.graph import line_topology

        net = line_topology(4)
        net.set_cache_capacity(2, 5.0)
        prob = ProblemInstance(
            net,
            ("a", "b"),
            {("a", 3): 3.0, ("b", 3): 1.0},
            item_sizes={"a": 2.0, "b": 3.0},
            pinned=pin_full_catalog(("a", "b"), [0]),
        )
        result = solve(prob)
        assert "greedy" in result.method
        assert result.feasible

    def test_icir_capacitated_uses_alternating(self):
        prob = make_line_problem(cache_nodes={3: 1}, link_capacity=50.0)
        result = solve(prob, rng=np.random.default_rng(0))
        assert "alternating" in result.method
        assert result.feasible

    def test_fcir_collapses_to_icir(self):
        prob = make_line_problem(cache_nodes={3: 1})
        result = solve(prob, caching="fractional", routing="integral")
        assert "IC-IR" in result.regime

    def test_invalid_modes(self):
        prob = make_line_problem()
        with pytest.raises(InvalidProblemError):
            solve(prob, caching="quantum")
        with pytest.raises(InvalidProblemError):
            solve(prob, routing="quantum")


class TestRegimeOrdering:
    def test_fcfr_cheapest_icir_most_expensive(self):
        """The regime ordering of Section 2.4 on a nontrivial instance."""
        prob = make_line_problem(
            cache_nodes={3: 1, 4: 1},
            demand={("item0", 4): 4.0, ("item1", 4): 2.0, ("item0", 2): 1.0},
            link_capacity=20.0,
        )
        rng = np.random.default_rng(0)
        fcfr = solve(prob, caching="fractional", routing="fractional")
        icfr = solve(prob, caching="integral", routing="fractional", rng=rng)
        icir = solve(prob, caching="integral", routing="integral", rng=rng)
        assert fcfr.cost <= icfr.cost + 1e-6
        assert fcfr.cost <= icir.cost + 1e-6

    def test_metrics_populated(self):
        prob = make_line_problem(cache_nodes={3: 1}, link_capacity=50.0)
        result = solve(prob)
        assert result.cost > 0
        assert result.congestion >= 0
        assert 0 <= result.max_cache_occupancy <= 1 + 1e-9
