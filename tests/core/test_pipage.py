"""Tests for pipage rounding (Lemma 4.3)."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import pipage_round
from repro.exceptions import InvalidProblemError


def linear_weights(weights):
    return lambda v, i, x: weights.get((v, i), 0.0)


class TestPipageRound:
    def test_already_integral_is_untouched(self):
        x = {(1, "a"): 1.0, (1, "b"): 1.0}
        out = pipage_round(x, {1: 2}, linear_weights({}))
        assert out == {(1, "a"): 1.0, (1, "b"): 1.0}

    def test_two_fractional_merge_to_heavier(self):
        x = {(1, "a"): 0.5, (1, "b"): 0.5}
        out = pipage_round(x, {1: 1}, linear_weights({(1, "a"): 2.0, (1, "b"): 1.0}))
        assert out == {(1, "a"): 1.0}

    def test_lighter_item_wins_when_heavier_weightless(self):
        x = {(1, "a"): 0.5, (1, "b"): 0.5}
        out = pipage_round(x, {1: 1}, linear_weights({(1, "b"): 3.0}))
        assert out == {(1, "b"): 1.0}

    def test_sum_above_one_keeps_both(self):
        x = {(1, "a"): 0.9, (1, "b"): 0.8}
        out = pipage_round(x, {1: 2}, linear_weights({(1, "a"): 2.0, (1, "b"): 1.0}))
        # total mass 1.7 -> one full item + one 0.7 -> singleton rounded up.
        assert out == {(1, "a"): 1.0, (1, "b"): 1.0}

    def test_singleton_rounded_up(self):
        x = {(1, "a"): 0.4}
        out = pipage_round(x, {1: 1}, linear_weights({}))
        assert out == {(1, "a"): 1.0}

    def test_capacity_never_exceeded(self):
        x = {(1, "a"): 0.5, (1, "b"): 0.5, (1, "c"): 0.5}
        out = pipage_round(
            x, {1: 2}, linear_weights({(1, "a"): 3.0, (1, "b"): 2.0, (1, "c"): 1.0})
        )
        assert sum(out.values()) <= 2

    def test_multiple_nodes_independent(self):
        x = {(1, "a"): 0.5, (1, "b"): 0.5, (2, "a"): 0.3}
        out = pipage_round(
            x, {1: 1, 2: 1}, linear_weights({(1, "a"): 1.0, (1, "b"): 0.5})
        )
        assert out.get((2, "a")) == 1.0

    def test_rejects_out_of_range_values(self):
        with pytest.raises(InvalidProblemError):
            pipage_round({(1, "a"): 1.4}, {1: 2}, linear_weights({}))

    def test_rejects_fractional_capacity(self):
        with pytest.raises(InvalidProblemError):
            pipage_round({(1, "a"): 0.5, (1, "b"): 0.5}, {1: 1.5}, linear_weights({}))

    def test_empty_input(self):
        assert pipage_round({}, {}, linear_weights({})) == {}

    @settings(max_examples=40, deadline=None)
    @given(
        st.lists(st.floats(min_value=0.0, max_value=1.0), min_size=2, max_size=6),
        st.lists(st.floats(min_value=0.0, max_value=10.0), min_size=6, max_size=6),
        st.integers(min_value=1, max_value=4),
    )
    def test_never_decreases_linear_objective(self, fracs, weights, cap):
        """Core pipage property: sum(w * x) never decreases."""
        items = [f"i{k}" for k in range(len(fracs))]
        total = sum(fracs)
        if total > cap:
            fracs = [f * cap / total for f in fracs]
        x = {(0, i): f for i, f in zip(items, fracs) if f > 1e-6}
        w = {(0, i): weights[k] for k, i in enumerate(items)}
        before = sum(w[key] * val for key, val in x.items())
        out = pipage_round(x, {0: cap}, linear_weights(w))
        after = sum(w.get(key, 0.0) * val for key, val in out.items())
        assert after >= before - 1e-7
        assert sum(out.values()) <= cap + 1e-9
        assert all(val == 1.0 for val in out.values())
