"""Tests for MMSFP / MMUFP routing under a fixed placement (Section 4.3.2)."""

import numpy as np
import pytest

from repro.core import (
    Placement,
    Solution,
    check_feasibility,
    congestion,
    greedy_unsplittable_routing,
    mmsfp_routing,
    mmufp_routing,
    randomized_rounding_routing,
    routing_cost,
)
from repro.core.routing import build_item_auxiliary_graph, holders_of
from repro.exceptions import InfeasibleError

from tests.core.conftest import make_line_problem


class TestAuxiliaryGraph:
    def test_holders_include_pinned_and_integral(self):
        prob = make_line_problem(cache_nodes={3: 1})
        item = prob.catalog[0]
        placement = Placement({(3, item): 1.0, (2, item): 0.4})
        assert holders_of(prob, placement, item) == {0, 3}  # fractional excluded

    def test_virtual_sources_added(self):
        prob = make_line_problem()
        aux, sources = build_item_auxiliary_graph(prob, Placement())
        for item, vs in sources.items():
            assert aux.has_edge(vs, 0)
            assert aux.edges[vs, 0]["cost"] == 0.0

    def test_no_holder_raises(self):
        prob = make_line_problem()
        prob = prob.__class__(
            network=prob.network, catalog=prob.catalog,
            demand=prob.demand, pinned=frozenset(),
        )
        with pytest.raises(InfeasibleError):
            build_item_auxiliary_graph(prob, Placement())


class TestMMSFP:
    def test_origin_only(self):
        prob = make_line_problem()
        result = mmsfp_routing(prob, Placement())
        assert result.cost == pytest.approx(24.0)
        assert routing_cost(prob, result.routing) == pytest.approx(24.0)

    def test_uses_nearest_replica_when_uncapacitated(self):
        prob = make_line_problem(cache_nodes={3: 1})
        item = prob.catalog[0]
        result = mmsfp_routing(prob, Placement({(3, item): 1.0}))
        assert result.cost == pytest.approx(5 * 1 + 1 * 4)

    def test_splits_under_tight_capacity(self):
        prob = make_line_problem(link_capacity=3.0)
        # total demand 6 > capacity 3 on the line: infeasible from origin only.
        with pytest.raises(InfeasibleError):
            mmsfp_routing(prob, Placement())

    def test_fractions_sum_to_one(self):
        prob = make_line_problem(cache_nodes={3: 1})
        item = prob.catalog[0]
        result = mmsfp_routing(prob, Placement({(3, item): 1.0}))
        for request in prob.demand:
            assert result.routing.served_fraction(request) == pytest.approx(1.0)

    def test_lower_bounds_integral(self):
        prob = make_line_problem(cache_nodes={3: 1}, link_capacity=10.0)
        placement = Placement({(3, prob.catalog[0]): 1.0})
        frac = mmsfp_routing(prob, placement)
        integral = mmufp_routing(
            prob, placement, rng=np.random.default_rng(0), n_samples=4
        )
        assert frac.cost <= routing_cost(prob, integral) + 1e-6


class TestMMUFP:
    def test_randomized_is_integral_and_feasible(self):
        prob = make_line_problem(cache_nodes={3: 1}, link_capacity=10.0)
        placement = Placement({(3, prob.catalog[0]): 1.0})
        routing = randomized_rounding_routing(
            prob, placement, rng=np.random.default_rng(1), n_samples=8
        )
        assert routing.is_integral()
        assert check_feasibility(prob, Solution(placement, routing)).feasible

    def test_greedy_is_integral(self):
        prob = make_line_problem(cache_nodes={3: 1}, link_capacity=10.0)
        placement = Placement({(3, prob.catalog[0]): 1.0})
        routing = greedy_unsplittable_routing(prob, placement)
        assert routing.is_integral()
        assert check_feasibility(prob, Solution(placement, routing)).feasible

    def test_greedy_avoids_saturated_links(self):
        """With a tight cheap path and a loose detour, greedy splits requests."""
        import networkx as nx

        from repro.core import ProblemInstance, pin_full_catalog
        from repro.graph import CacheNetwork

        g = nx.DiGraph()
        g.add_edge("o", "m", cost=1.0, capacity=5.0)
        g.add_edge("m", "t", cost=1.0, capacity=5.0)
        g.add_edge("o", "d", cost=5.0, capacity=50.0)
        g.add_edge("d", "t", cost=5.0, capacity=50.0)
        net = CacheNetwork(g)
        catalog = ("a", "b")
        demand = {("a", "t"): 4.0, ("b", "t"): 4.0}
        prob = ProblemInstance(
            net, catalog, demand, pinned=pin_full_catalog(catalog, ["o"])
        )
        routing = greedy_unsplittable_routing(prob, Placement())
        loads: dict = {}
        for pfs in routing.paths.values():
            for pf in pfs:
                for e in pf.edges():
                    loads[e] = loads.get(e, 0.0) + 4.0
        assert loads.get(("o", "m"), 0.0) <= 5.0  # greedy respected capacity
        assert congestion(prob, routing) <= 1.0

    def test_unknown_method(self):
        prob = make_line_problem()
        with pytest.raises(ValueError):
            mmufp_routing(prob, Placement(), method="magic")

    def test_randomized_deterministic_under_seed(self):
        prob = make_line_problem(cache_nodes={3: 1}, link_capacity=10.0)
        placement = Placement({(3, prob.catalog[0]): 1.0})
        r1 = randomized_rounding_routing(
            prob, placement, rng=np.random.default_rng(7), n_samples=4
        )
        r2 = randomized_rounding_routing(
            prob, placement, rng=np.random.default_rng(7), n_samples=4
        )
        assert {k: [(p.path, p.amount) for p in v] for k, v in r1.paths.items()} == {
            k: [(p.path, p.amount) for p in v] for k, v in r2.paths.items()
        }
