"""Property tests: the dense SolverContext path agrees with the dict path.

Every solver accepts ``context=None`` (dict-based ShortestPathCache) or a
SolverContext (dense distance matrix + vectorized reductions).  These tests
drive both paths over random seeded instances and demand identical results,
which is the correctness argument for the vectorization.
"""

import numpy as np
import pytest

from repro.core import (
    RNRCostSaving,
    ShortestPathCache,
    SolverContext,
    greedy_rnr_placement,
    route_to_nearest_replica,
    routing_cost,
)
from repro.core.algorithm1 import algorithm1
from repro.core.submodular import local_search_swap
from repro.graph import all_pairs_least_costs

from tests.core.conftest import make_line_problem, random_uncapacitated_problem

SEEDS = range(8)


@pytest.fixture(params=SEEDS)
def random_problem(request):
    return random_uncapacitated_problem(request.param)


class TestContextStructure:
    def test_distances_match_dict_all_pairs(self, random_problem):
        ctx = SolverContext.from_problem(random_problem)
        costs, wmax = all_pairs_least_costs(random_problem.network.graph)
        for u in random_problem.network.nodes:
            for v in random_problem.network.nodes:
                assert ctx.distance(u, v) == pytest.approx(
                    costs[u].get(v, float("inf"))
                )
        assert ctx.w_max == pytest.approx(wmax)

    def test_requester_block_aligned_with_problem(self, random_problem):
        ctx = SolverContext.from_problem(random_problem)
        for item in random_problem.catalog:
            block = ctx.requesters(item)
            expected = tuple(random_problem.requesters_of(item))
            assert block.nodes == expected
            assert block.size == len(expected)
            for s, rate in zip(block.nodes, block.rates):
                assert rate == random_problem.demand[(item, s)]

    def test_baseline_costs_are_pinned_minima(self, random_problem):
        ctx = SolverContext.from_problem(random_problem)
        sp = ShortestPathCache(random_problem)
        for item in random_problem.catalog:
            block = ctx.requesters(item)
            base = ctx.baseline_costs(item)
            for s, got in zip(block.nodes, base):
                expected = min(
                    (
                        sp.distance(h, s)
                        for h in random_problem.pinned_holders(item)
                    ),
                    default=float("inf"),
                )
                assert got == pytest.approx(min(expected, ctx.w_max))

    def test_baseline_costs_returns_fresh_copy(self):
        prob = make_line_problem(cache_nodes={3: 1})
        ctx = SolverContext.from_problem(prob)
        item = prob.catalog[0]
        first = ctx.baseline_costs(item)
        first[:] = -1.0
        assert np.all(ctx.baseline_costs(item) >= 0.0)

    def test_link_cost_matches_network(self, random_problem):
        ctx = SolverContext.from_problem(random_problem)
        for (u, v) in random_problem.network.edges:
            assert ctx.link_cost(u, v) == random_problem.network.cost(u, v)


class TestObjectiveEquivalence:
    def test_marginal_gains_agree(self, random_problem):
        ctx = SolverContext.from_problem(random_problem)
        f_dict = RNRCostSaving(random_problem)
        f_ctx = RNRCostSaving(random_problem, context=ctx)
        cache_nodes = random_problem.network.cache_nodes()
        for item in random_problem.catalog:
            for v in cache_nodes:
                assert f_ctx.marginal_gain(v, item) == pytest.approx(
                    f_dict.marginal_gain(v, item)
                ), (v, item)

    def test_gains_agree_after_adds(self, random_problem):
        ctx = SolverContext.from_problem(random_problem)
        f_dict = RNRCostSaving(random_problem)
        f_ctx = RNRCostSaving(random_problem, context=ctx)
        cache_nodes = random_problem.network.cache_nodes()
        # Grow a placement and keep checking gains stay in lockstep.
        for step, item in enumerate(random_problem.catalog[:2]):
            v = cache_nodes[step % len(cache_nodes)]
            f_dict.add(v, item)
            f_ctx.add(v, item)
            for other in random_problem.catalog:
                for w in cache_nodes:
                    assert f_ctx.marginal_gain(w, other) == pytest.approx(
                        f_dict.marginal_gain(w, other)
                    )

    def test_evaluate_agrees(self, random_problem):
        ctx = SolverContext.from_problem(random_problem)
        f_dict = RNRCostSaving(random_problem)
        f_ctx = RNRCostSaving(random_problem, context=ctx)
        v = random_problem.network.cache_nodes()[0]
        pairs = [(v, random_problem.catalog[0])]
        assert f_ctx.evaluate(pairs) == pytest.approx(f_dict.evaluate(pairs))


class TestSolverEquivalence:
    def test_greedy_placement_identical(self, random_problem):
        ctx = SolverContext.from_problem(random_problem)
        p_dict = greedy_rnr_placement(random_problem)
        p_ctx = greedy_rnr_placement(random_problem, context=ctx)
        assert dict(p_dict.items()) == dict(p_ctx.items())

    def test_rnr_routing_cost_identical(self, random_problem):
        ctx = SolverContext.from_problem(random_problem)
        placement = greedy_rnr_placement(random_problem)
        r_dict = route_to_nearest_replica(random_problem, placement)
        r_ctx = route_to_nearest_replica(
            random_problem, placement, context=ctx
        )
        assert routing_cost(random_problem, r_ctx) == pytest.approx(
            routing_cost(random_problem, r_dict)
        )

    def test_local_search_cost_identical(self, random_problem):
        ctx = SolverContext.from_problem(random_problem)
        start = greedy_rnr_placement(random_problem)
        swapped_dict = local_search_swap(
            random_problem, start.copy()
        )
        swapped_ctx = local_search_swap(
            random_problem, start.copy(), context=ctx
        )
        cost_dict = routing_cost(
            random_problem,
            route_to_nearest_replica(random_problem, swapped_dict),
        )
        cost_ctx = routing_cost(
            random_problem,
            route_to_nearest_replica(random_problem, swapped_ctx),
        )
        assert cost_ctx == pytest.approx(cost_dict)

    def test_algorithm1_cost_identical(self, random_problem):
        ctx = SolverContext.from_problem(random_problem)
        res_dict = algorithm1(random_problem)
        res_ctx = algorithm1(random_problem, context=ctx)
        assert routing_cost(
            random_problem, res_ctx.solution.routing
        ) == pytest.approx(routing_cost(random_problem, res_dict.solution.routing))

    def test_scipy_and_python_contexts_agree(self):
        prob = random_uncapacitated_problem(3)
        fast = SolverContext.from_problem(prob, use_scipy=True)
        slow = SolverContext.from_problem(prob, use_scipy=False)
        np.testing.assert_allclose(fast.dm.matrix, slow.dm.matrix)
        p_fast = greedy_rnr_placement(prob, context=fast)
        p_slow = greedy_rnr_placement(prob, context=slow)
        assert dict(p_fast.items()) == dict(p_slow.items())
