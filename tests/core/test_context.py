"""Property tests: the dense SolverContext path agrees with the dict path.

Every solver accepts ``context=None`` (dict-based ShortestPathCache) or a
SolverContext (dense distance matrix + vectorized reductions).  These tests
drive both paths over random seeded instances and demand identical results,
which is the correctness argument for the vectorization.
"""

import numpy as np
import pytest

from repro.core import (
    RNRCostSaving,
    ShortestPathCache,
    SolverContext,
    greedy_rnr_placement,
    route_to_nearest_replica,
    routing_cost,
)
from repro.core.algorithm1 import algorithm1
from repro.core.submodular import local_search_swap
from repro.graph import all_pairs_least_costs

from tests.core.conftest import make_line_problem, random_uncapacitated_problem

SEEDS = range(8)


@pytest.fixture(params=SEEDS)
def random_problem(request):
    return random_uncapacitated_problem(request.param)


class TestContextStructure:
    def test_distances_match_dict_all_pairs(self, random_problem):
        ctx = SolverContext.from_problem(random_problem)
        costs, wmax = all_pairs_least_costs(random_problem.network.graph)
        for u in random_problem.network.nodes:
            for v in random_problem.network.nodes:
                assert ctx.distance(u, v) == pytest.approx(
                    costs[u].get(v, float("inf"))
                )
        assert ctx.w_max == pytest.approx(wmax)

    def test_requester_block_aligned_with_problem(self, random_problem):
        ctx = SolverContext.from_problem(random_problem)
        for item in random_problem.catalog:
            block = ctx.requesters(item)
            expected = tuple(random_problem.requesters_of(item))
            assert block.nodes == expected
            assert block.size == len(expected)
            for s, rate in zip(block.nodes, block.rates):
                assert rate == random_problem.demand[(item, s)]

    def test_baseline_costs_are_pinned_minima(self, random_problem):
        ctx = SolverContext.from_problem(random_problem)
        sp = ShortestPathCache(random_problem)
        for item in random_problem.catalog:
            block = ctx.requesters(item)
            base = ctx.baseline_costs(item)
            for s, got in zip(block.nodes, base):
                expected = min(
                    (
                        sp.distance(h, s)
                        for h in random_problem.pinned_holders(item)
                    ),
                    default=float("inf"),
                )
                assert got == pytest.approx(min(expected, ctx.w_max))

    def test_baseline_costs_returns_fresh_copy(self):
        prob = make_line_problem(cache_nodes={3: 1})
        ctx = SolverContext.from_problem(prob)
        item = prob.catalog[0]
        first = ctx.baseline_costs(item)
        first[:] = -1.0
        assert np.all(ctx.baseline_costs(item) >= 0.0)

    def test_link_cost_matches_network(self, random_problem):
        ctx = SolverContext.from_problem(random_problem)
        for (u, v) in random_problem.network.edges:
            assert ctx.link_cost(u, v) == random_problem.network.cost(u, v)


class TestObjectiveEquivalence:
    def test_marginal_gains_agree(self, random_problem):
        ctx = SolverContext.from_problem(random_problem)
        f_dict = RNRCostSaving(random_problem)
        f_ctx = RNRCostSaving(random_problem, context=ctx)
        cache_nodes = random_problem.network.cache_nodes()
        for item in random_problem.catalog:
            for v in cache_nodes:
                assert f_ctx.marginal_gain(v, item) == pytest.approx(
                    f_dict.marginal_gain(v, item)
                ), (v, item)

    def test_gains_agree_after_adds(self, random_problem):
        ctx = SolverContext.from_problem(random_problem)
        f_dict = RNRCostSaving(random_problem)
        f_ctx = RNRCostSaving(random_problem, context=ctx)
        cache_nodes = random_problem.network.cache_nodes()
        # Grow a placement and keep checking gains stay in lockstep.
        for step, item in enumerate(random_problem.catalog[:2]):
            v = cache_nodes[step % len(cache_nodes)]
            f_dict.add(v, item)
            f_ctx.add(v, item)
            for other in random_problem.catalog:
                for w in cache_nodes:
                    assert f_ctx.marginal_gain(w, other) == pytest.approx(
                        f_dict.marginal_gain(w, other)
                    )

    def test_evaluate_agrees(self, random_problem):
        ctx = SolverContext.from_problem(random_problem)
        f_dict = RNRCostSaving(random_problem)
        f_ctx = RNRCostSaving(random_problem, context=ctx)
        v = random_problem.network.cache_nodes()[0]
        pairs = [(v, random_problem.catalog[0])]
        assert f_ctx.evaluate(pairs) == pytest.approx(f_dict.evaluate(pairs))


class TestSolverEquivalence:
    def test_greedy_placement_identical(self, random_problem):
        ctx = SolverContext.from_problem(random_problem)
        p_dict = greedy_rnr_placement(random_problem)
        p_ctx = greedy_rnr_placement(random_problem, context=ctx)
        assert dict(p_dict.items()) == dict(p_ctx.items())

    def test_rnr_routing_cost_identical(self, random_problem):
        ctx = SolverContext.from_problem(random_problem)
        placement = greedy_rnr_placement(random_problem)
        r_dict = route_to_nearest_replica(random_problem, placement)
        r_ctx = route_to_nearest_replica(
            random_problem, placement, context=ctx
        )
        assert routing_cost(random_problem, r_ctx) == pytest.approx(
            routing_cost(random_problem, r_dict)
        )

    def test_local_search_cost_identical(self, random_problem):
        ctx = SolverContext.from_problem(random_problem)
        start = greedy_rnr_placement(random_problem)
        swapped_dict = local_search_swap(
            random_problem, start.copy()
        )
        swapped_ctx = local_search_swap(
            random_problem, start.copy(), context=ctx
        )
        cost_dict = routing_cost(
            random_problem,
            route_to_nearest_replica(random_problem, swapped_dict),
        )
        cost_ctx = routing_cost(
            random_problem,
            route_to_nearest_replica(random_problem, swapped_ctx),
        )
        assert cost_ctx == pytest.approx(cost_dict)

    def test_algorithm1_cost_identical(self, random_problem):
        ctx = SolverContext.from_problem(random_problem)
        res_dict = algorithm1(random_problem)
        res_ctx = algorithm1(random_problem, context=ctx)
        assert routing_cost(
            random_problem, res_ctx.solution.routing
        ) == pytest.approx(routing_cost(random_problem, res_dict.solution.routing))

    def test_scipy_and_python_contexts_agree(self):
        prob = random_uncapacitated_problem(3)
        fast = SolverContext.from_problem(prob, use_scipy=True)
        slow = SolverContext.from_problem(prob, use_scipy=False)
        np.testing.assert_allclose(fast.dm.matrix, slow.dm.matrix)
        p_fast = greedy_rnr_placement(prob, context=fast)
        p_slow = greedy_rnr_placement(prob, context=slow)
        assert dict(p_fast.items()) == dict(p_slow.items())


class TestLazyTierEquivalence:
    """The lazy row tier is bit-identical to the dense tier on every solver."""

    def lazy_ctx(self, problem):
        return SolverContext.from_problem(problem, backend="lazy")

    def dense_ctx(self, problem):
        return SolverContext.from_problem(problem, backend="dense")

    def test_distance_ops_bit_identical(self, random_problem):
        dense = self.dense_ctx(random_problem)
        lazy = self.lazy_ctx(random_problem)
        nodes = list(random_problem.network.nodes)
        for v in nodes:
            assert np.array_equal(dense.row_of(v), lazy.row_of(v))
        assert np.array_equal(dense.rows_of(nodes[:4]), lazy.rows_of(nodes[:4]))
        assert dense.finite_max_from(nodes[:5]) == lazy.finite_max_from(nodes[:5])
        assert dense.w_max == lazy.w_max

    def test_pinned_and_baseline_bit_identical(self, random_problem):
        dense = self.dense_ctx(random_problem)
        lazy = self.lazy_ctx(random_problem)
        for item in random_problem.catalog:
            assert np.array_equal(
                dense.pinned_min_costs(item), lazy.pinned_min_costs(item)
            )
            assert np.array_equal(
                dense.baseline_costs(item), lazy.baseline_costs(item)
            )

    def test_greedy_bit_identical(self, random_problem):
        p_dense = greedy_rnr_placement(
            random_problem, context=self.dense_ctx(random_problem)
        )
        p_lazy = greedy_rnr_placement(
            random_problem, context=self.lazy_ctx(random_problem)
        )
        assert dict(p_dense.items()) == dict(p_lazy.items())

    def test_algorithm1_bit_identical(self, random_problem):
        res_dense = algorithm1(
            random_problem, context=self.dense_ctx(random_problem)
        )
        res_lazy = algorithm1(
            random_problem, context=self.lazy_ctx(random_problem)
        )
        assert dict(res_dense.solution.placement.items()) == dict(
            res_lazy.solution.placement.items()
        )
        assert res_dense.lp_objective == res_lazy.lp_objective
        assert routing_cost(
            random_problem, res_dense.solution.routing
        ) == routing_cost(random_problem, res_lazy.solution.routing)

    def test_rnr_bit_identical(self, random_problem):
        placement = greedy_rnr_placement(random_problem)
        r_dense = route_to_nearest_replica(
            random_problem, placement, context=self.dense_ctx(random_problem)
        )
        r_lazy = route_to_nearest_replica(
            random_problem, placement, context=self.lazy_ctx(random_problem)
        )
        assert routing_cost(random_problem, r_dense) == routing_cost(
            random_problem, r_lazy
        )

    def test_dm_property_raises_on_lazy(self):
        from repro.exceptions import ResourceError

        prob = random_uncapacitated_problem(0)
        lazy = self.lazy_ctx(prob)
        with pytest.raises(ResourceError):
            _ = lazy.dm

    def test_auto_threshold_picks_tier(self, monkeypatch):
        from repro.graph.backends import DenseBackend, LazyRowBackend

        prob = random_uncapacitated_problem(1)
        assert isinstance(
            SolverContext.from_problem(prob).backend, DenseBackend
        )
        monkeypatch.setenv("REPRO_DENSE_NODE_THRESHOLD", "3")
        assert isinstance(
            SolverContext.from_problem(prob).backend, LazyRowBackend
        )

    def test_prime_rows_limits_materialization(self):
        from repro.core.context import relevant_sources
        from repro.graph.backends import LazyRowBackend

        prob = random_uncapacitated_problem(2)
        ctx = self.lazy_ctx(prob)
        backend = ctx.backend
        assert isinstance(backend, LazyRowBackend)
        ctx.prime_rows()
        assert backend.materialized == len(relevant_sources(prob))

    def test_repr_does_not_force_wmax(self):
        prob = random_uncapacitated_problem(4)
        ctx = self.lazy_ctx(prob)
        assert "w_max=<unread>" in repr(ctx)
        _ = ctx.w_max
        assert "w_max=<unread>" not in repr(ctx)
