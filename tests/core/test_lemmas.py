"""Direct numeric checks of the paper's Lemmas 4.2 and 4.3.

These evaluate the actual functions of Section 4.1 — F_RNR (20) and its
concave surrogate L_RNR (6) — at random fractional points and verify the
Goemans-Williamson sandwich and the pipage-rounding monotonicity exactly as
stated, independently of Algorithm 1's implementation.
"""

import math

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import ShortestPathCache, pipage_round

from tests.core.conftest import random_uncapacitated_problem


def _setup(problem):
    sp = ShortestPathCache(problem)
    w_max = 1.0
    sources = {}
    for (item, s) in problem.demand:
        candidates = [
            v
            for v in set(problem.network.cache_nodes())
            | problem.pinned_holders(item)
            if sp.distance(v, s) < math.inf
        ]
        sources[(item, s)] = sorted(candidates, key=repr)
        for v in candidates:
            w_max = max(w_max, sp.distance(v, s))
    return sp, w_max, sources


def f_rnr(problem, sp, w_max, sources, x, r):
    """Equation (20): F_RNR(x, r) up to the constant offset per source set."""
    total = 0.0
    for (item, s), rate in problem.demand.items():
        for v in sources[(item, s)]:
            x_vi = 1.0 if (v, item) in problem.pinned else x.get((v, item), 0.0)
            coef = (w_max - sp.distance(v, s)) / w_max
            r_v = r.get((v, item, s), 0.0)
            total += rate * w_max * (1.0 - r_v * (1.0 - x_vi * coef))
    return total


def l_rnr(problem, sp, w_max, sources, x, r):
    """Equation (6): the piecewise-linear concave surrogate."""
    total = 0.0
    for (item, s), rate in problem.demand.items():
        for v in sources[(item, s)]:
            x_vi = 1.0 if (v, item) in problem.pinned else x.get((v, item), 0.0)
            coef = (w_max - sp.distance(v, s)) / w_max
            r_v = r.get((v, item, s), 0.0)
            total += rate * w_max * min(1.0, 1.0 - r_v + x_vi * coef)
    return total


def random_point(problem, sources, rng):
    """A random fractional (x, r) satisfying (2b) and box constraints."""
    x = {}
    for v in problem.network.cache_nodes():
        items = [i for i in problem.catalog if (v, i) not in problem.pinned]
        if not items:
            continue
        raw = rng.uniform(0, 1, size=len(items))
        cap = problem.network.cache_capacity(v)
        if raw.sum() > cap:
            raw *= cap / raw.sum()
        for item, value in zip(items, raw):
            x[(v, item)] = float(min(1.0, value))
    r = {}
    for (item, s), candidates in sources.items():
        weights = rng.dirichlet(np.ones(len(candidates)))
        for v, w in zip(candidates, weights):
            r[(v, item, s)] = float(w)
    return x, r


class TestLemma42:
    @settings(max_examples=20, deadline=None)
    @given(
        st.integers(min_value=0, max_value=200),
        st.integers(min_value=0, max_value=10_000),
    )
    def test_goemans_williamson_sandwich(self, seed, point_seed):
        problem = random_uncapacitated_problem(seed)
        sp, w_max, sources = _setup(problem)
        rng = np.random.default_rng(point_seed)
        x, r = random_point(problem, sources, rng)
        f = f_rnr(problem, sp, w_max, sources, x, r)
        l = l_rnr(problem, sp, w_max, sources, x, r)
        assert f <= l + 1e-9
        assert f >= (1 - 1 / math.e) * l - 1e-9


class TestLemma43:
    @settings(max_examples=20, deadline=None)
    @given(
        st.integers(min_value=0, max_value=200),
        st.integers(min_value=0, max_value=10_000),
    )
    def test_pipage_never_decreases_f_rnr(self, seed, point_seed):
        problem = random_uncapacitated_problem(seed)
        sp, w_max, sources = _setup(problem)
        rng = np.random.default_rng(point_seed)
        x, r = random_point(problem, sources, rng)
        # Pipage weights from (23): A_vi = sum_s lambda r (w_max - w_{v->s}).
        weights = {}
        for (item, s), rate in problem.demand.items():
            for v in sources[(item, s)]:
                key = (v, item)
                weights[key] = weights.get(key, 0.0) + rate * r.get(
                    (v, item, s), 0.0
                ) * (w_max - sp.distance(v, s))
        capacities = {
            v: problem.network.cache_capacity(v)
            for v in problem.network.cache_nodes()
        }
        rounded = pipage_round(
            x, capacities, lambda v, i, _x: weights.get((v, i), 0.0)
        )
        before = f_rnr(problem, sp, w_max, sources, x, r)
        after = f_rnr(problem, sp, w_max, sources, rounded, r)
        assert after >= before - 1e-7
        # And the rounded placement respects (2c) and (2d).
        for v, cap in capacities.items():
            used = sum(val for (vv, _i), val in rounded.items() if vv == v)
            assert used <= cap + 1e-9
        assert all(val == 1.0 for val in rounded.values())
