"""Tests for Algorithm 1 (Theorem 4.4)."""

import math

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import (
    algorithm1,
    check_feasibility,
    route_to_nearest_replica,
    routing_cost,
)
from repro.exceptions import InfeasibleError

from tests.core.conftest import (
    brute_force_rnr_optimum,
    make_line_problem,
    random_uncapacitated_problem,
)


class TestAlgorithm1:
    def test_line_places_popular_item(self):
        prob = make_line_problem(cache_nodes={3: 1})
        result = algorithm1(prob)
        assert (3, prob.catalog[0]) in result.solution.placement
        assert routing_cost(prob, result.solution.routing) == pytest.approx(
            5 * 1 + 1 * 4
        )

    def test_solution_is_feasible(self):
        prob = make_line_problem(cache_nodes={3: 1})
        result = algorithm1(prob)
        assert check_feasibility(prob, result.solution).feasible

    def test_placement_is_integral(self):
        prob = make_line_problem(cache_nodes={3: 1, 4: 2})
        result = algorithm1(prob)
        assert result.solution.placement.is_integral()
        assert result.solution.routing.is_integral()

    def test_zero_cache_capacity_serves_from_origin(self):
        prob = make_line_problem()
        result = algorithm1(prob)
        assert len(result.solution.placement) == 0
        assert routing_cost(prob, result.solution.routing) == pytest.approx(24.0)

    def test_no_source_raises(self):
        prob = make_line_problem()
        prob = prob.__class__(
            network=prob.network,
            catalog=prob.catalog,
            demand=prob.demand,
            pinned=frozenset(),
        )
        with pytest.raises(InfeasibleError):
            algorithm1(prob)

    def test_exact_on_toy(self):
        prob = make_line_problem(cache_nodes={3: 2})
        result = algorithm1(prob)
        # Capacity 2 caches both items -> optimal cost 6 * 1 hop.
        assert routing_cost(prob, result.solution.routing) == pytest.approx(6.0)
        assert routing_cost(prob, result.solution.routing) == pytest.approx(
            brute_force_rnr_optimum(prob)
        )

    @settings(max_examples=12, deadline=None)
    @given(st.integers(min_value=0, max_value=400))
    def test_theorem_4_4_guarantee(self, seed):
        """Cost saving >= (1 - 1/e) * optimal saving, measured vs w_max baseline."""
        prob = random_uncapacitated_problem(seed)
        result = algorithm1(prob)
        assert check_feasibility(prob, result.solution).feasible
        cost = routing_cost(prob, result.solution.routing)
        optimum = brute_force_rnr_optimum(prob)
        assert cost >= optimum - 1e-6  # never better than the true optimum
        # F' = constant - cost; Theorem 4.4 chain uses the LP optimum:
        # F'(final) >= (1-1/e) * lp_objective >= (1-1/e) * F'(opt).
        f_final = result.constant - cost
        assert f_final >= (1 - 1 / math.e) * result.lp_objective - 1e-6
        f_opt = result.constant - optimum
        assert f_final >= (1 - 1 / math.e) * f_opt - 1e-6

    @settings(max_examples=12, deadline=None)
    @given(st.integers(min_value=0, max_value=400))
    def test_lp_upper_bounds_optimal_saving(self, seed):
        """L_RNR at the LP optimum dominates F' at the true optimum (Lemma 4.2)."""
        prob = random_uncapacitated_problem(seed)
        result = algorithm1(prob)
        optimum = brute_force_rnr_optimum(prob)
        assert result.lp_objective >= result.constant - optimum - 1e-6

    @settings(max_examples=8, deadline=None)
    @given(st.integers(min_value=500, max_value=700))
    def test_often_matches_brute_force(self, seed):
        """On small instances the rounded solution is usually optimal; never worse
        than the (1-1/e) bound (checked above), and its RNR routing is consistent."""
        prob = random_uncapacitated_problem(seed)
        result = algorithm1(prob)
        rebuilt = route_to_nearest_replica(prob, result.solution.placement)
        assert routing_cost(prob, rebuilt) == pytest.approx(
            routing_cost(prob, result.solution.routing)
        )
