"""Tests for the lower-bound API."""

import math

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import (
    exact_icir,
    lower_bounds,
    rnr_relaxation_bound,
    solve,
)

from tests.core.conftest import (
    brute_force_rnr_optimum,
    make_line_problem,
    random_uncapacitated_problem,
)


class TestRNRRelaxation:
    def test_everything_cached_everywhere(self):
        prob = make_line_problem(cache_nodes={3: 1})
        # item at requester distance: nearest candidate (node 3) is 1 hop.
        bound = rnr_relaxation_bound(prob)
        assert bound == pytest.approx(6.0 * 1)

    def test_no_caches_uses_origin(self):
        prob = make_line_problem()
        assert rnr_relaxation_bound(prob) == pytest.approx(24.0)

    def test_bound_never_exceeds_exact(self):
        prob = make_line_problem(cache_nodes={3: 1})
        assert rnr_relaxation_bound(prob) <= exact_icir(prob).cost + 1e-9


class TestLowerBounds:
    def test_uncapacitated_includes_all(self):
        prob = make_line_problem(cache_nodes={3: 1})
        bounds = lower_bounds(prob)
        assert bounds.fcfr is not None
        assert bounds.algorithm1_lp is not None
        assert bounds.best >= bounds.rnr_relaxation - 1e-9

    def test_capacitated_skips_algorithm1(self):
        prob = make_line_problem(cache_nodes={3: 1}, link_capacity=50.0)
        bounds = lower_bounds(prob)
        assert bounds.algorithm1_lp is None
        assert bounds.fcfr is not None

    def test_fcfr_optional(self):
        prob = make_line_problem(cache_nodes={3: 1})
        bounds = lower_bounds(prob, include_fcfr=False)
        assert bounds.fcfr is None
        assert bounds.best < math.inf

    def test_infeasible_fcfr_degrades_gracefully(self):
        prob = make_line_problem(link_capacity=2.0)  # FC-FR infeasible
        bounds = lower_bounds(prob)
        assert bounds.fcfr is None
        assert bounds.rnr_relaxation == pytest.approx(24.0)

    @settings(max_examples=10, deadline=None)
    @given(st.integers(min_value=0, max_value=200))
    def test_all_bounds_below_optimum(self, seed):
        prob = random_uncapacitated_problem(seed)
        optimum = brute_force_rnr_optimum(prob)
        bounds = lower_bounds(prob)
        assert bounds.rnr_relaxation <= optimum + 1e-6
        if bounds.fcfr is not None:
            assert bounds.fcfr <= optimum + 1e-6
        if bounds.algorithm1_lp is not None:
            assert bounds.algorithm1_lp <= optimum + 1e-6
        assert bounds.best <= optimum + 1e-6

    @settings(max_examples=6, deadline=None)
    @given(st.integers(min_value=0, max_value=100))
    def test_gap_reporting_use_case(self, seed):
        """The intended usage: certify an approximation gap."""
        prob = random_uncapacitated_problem(seed)
        result = solve(prob)
        bounds = lower_bounds(prob)
        if bounds.best > 0:
            gap = result.cost / bounds.best
            assert gap >= 1 - 1e-9
