"""Tests for alternating optimization (Section 4.3.3), incl. the Fig. 9 gadget."""

import networkx as nx
import numpy as np
import pytest

from repro.core import (
    ProblemInstance,
    alternating_optimization,
    check_feasibility,
    routing_cost,
    solve_fcfr,
)
from repro.core.problem import pin_full_catalog
from repro.graph import CacheNetwork

from tests.core.conftest import make_line_problem


class TestAlternating:
    def test_improves_over_origin_only(self):
        prob = make_line_problem(cache_nodes={3: 2}, link_capacity=100.0)
        result = alternating_optimization(prob, rng=np.random.default_rng(0))
        assert routing_cost(prob, result.solution.routing) < 24.0
        assert check_feasibility(prob, result.solution).feasible

    def test_history_starts_at_initial(self):
        prob = make_line_problem(cache_nodes={3: 2}, link_capacity=100.0)
        result = alternating_optimization(prob, rng=np.random.default_rng(0))
        assert result.history[0]["iteration"] == 0
        assert result.history[0]["accepted"]

    def test_accepted_costs_monotone(self):
        prob = make_line_problem(cache_nodes={3: 1}, link_capacity=100.0)
        result = alternating_optimization(prob, rng=np.random.default_rng(1))
        accepted = [h["cost"] for h in result.history if h["accepted"]]
        assert accepted == sorted(accepted, reverse=True)

    def test_converges_within_budget(self):
        prob = make_line_problem(cache_nodes={3: 1}, link_capacity=100.0)
        result = alternating_optimization(
            prob, max_iterations=15, rng=np.random.default_rng(2)
        )
        assert result.iterations <= 15

    def test_fractional_routing_mode(self):
        prob = make_line_problem(cache_nodes={3: 1}, link_capacity=100.0)
        result = alternating_optimization(
            prob, integral_routing=False, rng=np.random.default_rng(3)
        )
        assert check_feasibility(prob, result.solution).feasible

    def test_never_worse_than_fcfr(self):
        prob = make_line_problem(cache_nodes={3: 1}, link_capacity=100.0)
        lower = solve_fcfr(prob).cost
        result = alternating_optimization(prob, rng=np.random.default_rng(4))
        assert routing_cost(prob, result.solution.routing) >= lower - 1e-6

    def test_greedy_mmufp_method(self):
        prob = make_line_problem(cache_nodes={3: 1}, link_capacity=100.0)
        result = alternating_optimization(
            prob, mmufp_method="greedy", rng=np.random.default_rng(5)
        )
        assert check_feasibility(prob, result.solution).feasible

    def test_infeasible_without_augmentation_falls_back(self):
        """Total demand exceeds origin-link capacity; greedy warm start kicks in."""
        # Total demand 6 exceeds the line capacity 4, so origin-only routing
        # is infeasible; a cache at the requester absorbs the popular item.
        prob = make_line_problem(cache_nodes={4: 1}, link_capacity=4.0)
        result = alternating_optimization(prob, rng=np.random.default_rng(6))
        assert check_feasibility(prob, result.solution).feasible


class TestFig9Gadget:
    """Proposition 4.8: a bad Nash equilibrium the alternation cannot leave."""

    def _gadget(self, lam=10.0, eps=0.01, w=5.0):
        g = nx.DiGraph()
        g.add_edge("vs", "v1", cost=w, capacity=lam)
        g.add_edge("vs", "v2", cost=w, capacity=lam)
        g.add_edge("v1", "s", cost=eps, capacity=lam)
        g.add_edge("v2", "s", cost=w, capacity=lam)
        net = CacheNetwork(g, {"v1": 1, "v2": 1, "vs": 2})
        catalog = ("item1", "item2")
        demand = {("item1", "s"): lam, ("item2", "s"): eps}
        prob = ProblemInstance(
            net, catalog, demand, pinned=pin_full_catalog(catalog, ["vs"])
        )
        return prob, lam, eps, w

    def test_bad_equilibrium_is_stable(self):
        """Starting from the bad placement, one full alternation round keeps it."""
        from repro.core import Placement, mmufp_routing, optimize_placement

        prob, lam, eps, w = self._gadget()
        bad = Placement({("v2", "item1"): 1.0, ("v1", "item2"): 1.0})
        routing = mmufp_routing(prob, bad, rng=np.random.default_rng(0), n_samples=4)
        bad_cost = routing_cost(prob, routing)
        assert bad_cost == pytest.approx(lam * w + eps * eps)
        replacement = optimize_placement(prob, routing)
        rerouted = mmufp_routing(
            prob, replacement, rng=np.random.default_rng(0), n_samples=4
        )
        # No unilateral improvement: the NE of Proposition 4.8.
        assert routing_cost(prob, rerouted) >= bad_cost - 1e-9

    def test_optimal_solution_is_much_better(self):
        from repro.core import Placement, mmufp_routing

        prob, lam, eps, w = self._gadget()
        good = Placement({("v1", "item1"): 1.0, ("v2", "item2"): 1.0})
        routing = mmufp_routing(prob, good, rng=np.random.default_rng(0), n_samples=4)
        good_cost = routing_cost(prob, routing)
        assert good_cost == pytest.approx(eps * (lam + w), rel=1e-6)
        assert good_cost < lam * w + eps * eps
