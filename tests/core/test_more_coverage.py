"""Focused coverage additions across core modules."""

import numpy as np
import pytest

from repro.core import (
    MSUFPCommodity,
    Placement,
    Routing,
    extract_serving_paths,
    optimize_placement_lp,
    placement_cost,
    solve_msufp,
)
from repro.exceptions import InvalidProblemError
from repro.flow.decomposition import PathFlow

from tests.core.conftest import make_line_problem


class TestPlacementWithFractionalRouting:
    def test_extract_weights_fractional_paths(self):
        prob = make_line_problem(cache_nodes={3: 1})
        item = prob.catalog[0]
        routing = Routing(
            {
                (item, 4): [
                    PathFlow(path=(0, 1, 2, 3, 4), amount=0.25),
                    PathFlow(path=(0, 1, 2, 3, 4), amount=0.75),
                ],
                (prob.catalog[1], 4): [PathFlow(path=(0, 1, 2, 3, 4), amount=1.0)],
            }
        )
        paths = extract_serving_paths(prob, routing)
        rates = sorted(sp.rate for sp in paths if sp.item == item)
        assert rates == pytest.approx([0.25 * 5, 0.75 * 5])

    def test_lp_placement_on_fractional_routing(self):
        prob = make_line_problem(cache_nodes={3: 1})
        item = prob.catalog[0]
        routing = Routing(
            {
                (item, 4): [
                    PathFlow(path=(0, 1, 2, 3, 4), amount=0.5),
                    PathFlow(path=(0, 1, 2, 4), amount=0.5)
                    if prob.network.has_edge(2, 4)
                    else PathFlow(path=(0, 1, 2, 3, 4), amount=0.5),
                ],
                (prob.catalog[1], 4): [PathFlow(path=(0, 1, 2, 3, 4), amount=1.0)],
            }
        )
        placement = optimize_placement_lp(prob, routing)
        assert (3, item) in placement  # caching where the rate concentrates

    def test_placement_cost_weights_by_fraction(self):
        prob = make_line_problem()
        item = prob.catalog[0]
        routing = Routing(
            {
                (item, 4): [PathFlow(path=(0, 1, 2, 3, 4), amount=0.5)],
                (prob.catalog[1], 4): [PathFlow(path=(0, 1, 2, 3, 4), amount=1.0)],
            }
        )
        paths = extract_serving_paths(prob, routing)
        # Half of item0's rate-5 demand plus all of item1's rate-1 demand.
        assert placement_cost(prob, paths, Placement()) == pytest.approx(
            (0.5 * 5 + 1.0) * 4
        )


class TestMSUFPEngines:
    def _graph(self):
        import networkx as nx

        g = nx.DiGraph()
        g.add_edge("s", "a", cost=1.0, capacity=4.0)
        g.add_edge("a", "t", cost=1.0, capacity=4.0)
        g.add_edge("s", "t", cost=5.0, capacity=10.0)
        return g

    def test_ssp_engine_matches_lp(self):
        comms = [MSUFPCommodity(f"c{k}", "t", 1.0 + k) for k in range(3)]
        lp = solve_msufp(self._graph(), "s", comms, K=4, engine="lp")
        ssp = solve_msufp(self._graph(), "s", comms, K=4, engine="ssp")
        assert lp.splittable_cost == pytest.approx(ssp.splittable_cost)
        assert lp.unsplittable_cost == pytest.approx(ssp.unsplittable_cost)

    def test_unknown_engine(self):
        with pytest.raises(InvalidProblemError):
            solve_msufp(
                self._graph(), "s", [MSUFPCommodity("c", "t", 1.0)], engine="abacus"
            )


class TestRandomizedRoundingStatistics:
    def test_single_sample_follows_fractions(self):
        """With one sample per draw, path choice frequencies track fractions."""
        from repro.core import randomized_rounding_routing

        prob = make_line_problem(cache_nodes={3: 1}, link_capacity=1e9)
        item = prob.catalog[0]
        placement = Placement({(3, item): 1.0})
        sources = {3: 0, 0: 0}
        for seed in range(60):
            routing = randomized_rounding_routing(
                prob, placement, rng=np.random.default_rng(seed), n_samples=1
            )
            src = routing.paths[(item, 4)][0].source
            sources[src] = sources.get(src, 0) + 1
        # Uncapacitated MMSFP puts everything on the nearest replica, so the
        # rounding is deterministic here: always node 3.
        assert sources[3] == 60
