"""Tests for the extra evaluation metrics (hit rate, stretch, utilization)."""

import pytest

from repro.core import (
    Placement,
    Routing,
    Solution,
    cache_hit_rate,
    path_stretch,
    route_to_nearest_replica,
    summarize,
    utilization_profile,
)
from repro.flow.decomposition import PathFlow

from tests.core.conftest import make_line_problem


class TestCacheHitRate:
    def test_all_from_origin_is_zero(self):
        prob = make_line_problem()
        routing = route_to_nearest_replica(prob, Placement())
        assert cache_hit_rate(prob, routing) == 0.0

    def test_all_cached_is_one(self):
        prob = make_line_problem(cache_nodes={4: 2})
        placement = Placement(
            {(4, prob.catalog[0]): 1.0, (4, prob.catalog[1]): 1.0}
        )
        routing = route_to_nearest_replica(prob, placement)
        assert cache_hit_rate(prob, routing) == pytest.approx(1.0)

    def test_partial_hit_weighted_by_rate(self):
        prob = make_line_problem(cache_nodes={3: 1})  # rates 5 (hit) and 1 (miss)
        placement = Placement({(3, prob.catalog[0]): 1.0})
        routing = route_to_nearest_replica(prob, placement)
        assert cache_hit_rate(prob, routing) == pytest.approx(5.0 / 6.0)

    def test_in_summarize(self):
        prob = make_line_problem()
        sol = Solution(Placement(), route_to_nearest_replica(prob, Placement()))
        assert summarize(prob, sol)["cache_hit_rate"] == 0.0


class TestPathStretch:
    def test_optimal_routing_has_stretch_one(self):
        prob = make_line_problem(cache_nodes={3: 1})
        placement = Placement({(3, prob.catalog[0]): 1.0})
        routing = route_to_nearest_replica(prob, placement)
        # Floors: nearest candidate is node 3 at 1 hop; item0 served at the
        # floor, item1 from the origin (4 hops vs floor 1) -> stretch 4.
        stretch = path_stretch(prob, routing)
        assert stretch == pytest.approx((5 * 1.0 + 1 * 4.0) / 6.0)

    def test_detour_increases_stretch(self):
        prob = make_line_problem(cache_nodes={3: 1})
        item0, item1 = prob.catalog
        routing = Routing(
            {
                (item0, 4): [PathFlow(path=(3, 4), amount=1.0)],
                (item1, 4): [PathFlow(path=(0, 1, 2, 3, 4), amount=1.0)],
            }
        )
        stretched = Routing(
            {
                (item0, 4): [PathFlow(path=(3, 2, 3, 4), amount=1.0)]
                if prob.network.has_edge(3, 2)
                else routing.paths[(item0, 4)],
                (item1, 4): routing.paths[(item1, 4)],
            }
        )
        assert path_stretch(prob, stretched) >= path_stretch(prob, routing)


class TestUtilizationProfile:
    def test_profile_matches_manual(self):
        prob = make_line_problem(link_capacity=12.0)
        routing = route_to_nearest_replica(prob, Placement())
        profile = utilization_profile(prob, routing)
        assert profile[(0, 1)] == pytest.approx(0.5)
        assert profile[(3, 4)] == pytest.approx(0.5)

    def test_uncapacitated_profile_empty(self):
        prob = make_line_problem()
        routing = route_to_nearest_replica(prob, Placement())
        assert utilization_profile(prob, routing) == {}
