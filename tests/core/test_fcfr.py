"""Tests for the exact FC-FR LP (Section 3)."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import (
    algorithm1,
    check_feasibility,
    routing_cost,
    solve_fcfr,
)
from repro.exceptions import InfeasibleError

from tests.core.conftest import (
    brute_force_rnr_optimum,
    make_line_problem,
    random_uncapacitated_problem,
)


class TestFCFR:
    def test_origin_only_matches_shortest_paths(self):
        prob = make_line_problem()
        result = solve_fcfr(prob)
        assert result.cost == pytest.approx(24.0)
        assert check_feasibility(prob, result.solution).feasible

    def test_cache_capacity_fully_exploited(self):
        """With capacity 1 and two unit-rate items, one unit of content mass is
        cached at the requester (the optimum is degenerate between fractional
        and integral splits; the cost is 4 either way)."""
        prob = make_line_problem(
            cache_nodes={4: 1},
            demand={("item0", 4): 1.0, ("item1", 4): 1.0},
        )
        result = solve_fcfr(prob)
        assert result.cost == pytest.approx(4.0)
        placement = result.solution.placement
        mass = placement[(4, "item0")] + placement[(4, "item1")]
        assert mass == pytest.approx(1.0, abs=1e-6)

    def test_fractional_caching_strictly_beats_integral(self):
        """A sub-unit cache capacity is usable by FC (coded chunks) but not IC."""
        prob = make_line_problem(
            cache_nodes={4: 0.4},
            demand={("item0", 4): 2.0},
        )
        result = solve_fcfr(prob)
        # FC: cache 0.4 of the item locally -> cost 2 * 0.6 * 4 = 4.8.
        assert result.cost == pytest.approx(4.8)
        # IC cannot use the 0.4-item cache at all -> cost 8.
        assert result.cost < 8.0

    def test_respects_link_capacities(self):
        prob = make_line_problem(cache_nodes={4: 1}, link_capacity=4.0)
        result = solve_fcfr(prob)
        assert check_feasibility(prob, result.solution).feasible

    def test_infeasible_instance_raises(self):
        # Demand 6 into node 4 over a single capacity-2 link, cache too small
        # to absorb it fractionally (capacity 0).
        prob = make_line_problem(link_capacity=2.0)
        with pytest.raises(InfeasibleError):
            solve_fcfr(prob)

    @settings(max_examples=8, deadline=None)
    @given(st.integers(min_value=0, max_value=150))
    def test_lower_bounds_ic_ir(self, seed):
        """FC-FR optimum <= IC-IR optimum (Fig. 1's regime ordering)."""
        prob = random_uncapacitated_problem(seed)
        lower = solve_fcfr(prob).cost
        ic_ir_opt = brute_force_rnr_optimum(prob)
        assert lower <= ic_ir_opt + 1e-6

    @settings(max_examples=8, deadline=None)
    @given(st.integers(min_value=0, max_value=150))
    def test_lower_bounds_algorithm1(self, seed):
        prob = random_uncapacitated_problem(seed)
        lower = solve_fcfr(prob).cost
        result = algorithm1(prob)
        assert lower <= routing_cost(prob, result.solution.routing) + 1e-6

    def test_served_fractions_complete(self):
        prob = make_line_problem(cache_nodes={3: 1})
        result = solve_fcfr(prob)
        for request in prob.demand:
            assert result.solution.routing.served_fraction(request) == pytest.approx(
                1.0
            )
