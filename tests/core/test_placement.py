"""Tests for content placement under fixed routing (Section 4.3.1 / 5.2.3)."""

import itertools

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import (
    Placement,
    ProblemInstance,
    Routing,
    extract_serving_paths,
    optimize_placement,
    optimize_placement_greedy,
    optimize_placement_lp,
    pin_full_catalog,
    placement_cost,
    placement_saving,
)
from repro.flow.decomposition import PathFlow
from repro.graph import line_topology

from tests.core.conftest import make_line_problem


def origin_routing(prob) -> Routing:
    r = Routing()
    for (item, s) in prob.demand:
        r.paths[(item, s)] = [PathFlow(path=tuple(range(s + 1)), amount=1.0)]
    return r


def brute_force_best_placement(prob, paths):
    """Exhaustive optimum of C_{r,f}(x) over integral placements."""
    cache_nodes = [
        v for v in prob.network.cache_nodes() if prob.network.cache_capacity(v) > 0
    ]
    options = []
    for v in cache_nodes:
        cap = int(prob.network.cache_capacity(v))
        items = [i for i in prob.catalog if (v, i) not in prob.pinned]
        opts = []
        for k in range(min(cap, len(items)) + 1):
            opts.extend(itertools.combinations(items, k))
        options.append(opts)
    best = float("inf")
    for combo in itertools.product(*options):
        placement = Placement()
        for v, chosen in zip(cache_nodes, combo):
            for i in chosen:
                placement[(v, i)] = 1.0
        best = min(best, placement_cost(prob, paths, placement))
    return best


class TestServingPaths:
    def test_extract_paths_and_suffix_costs(self):
        prob = make_line_problem()
        paths = extract_serving_paths(prob, origin_routing(prob))
        assert len(paths) == 2
        sp = paths[0]
        assert sp.path == (0, 1, 2, 3, 4)
        assert sp.suffix_cost == (4.0, 3.0, 2.0, 1.0, 0.0)

    def test_zero_amount_paths_skipped(self):
        prob = make_line_problem()
        r = Routing()
        for (item, s) in prob.demand:
            r.paths[(item, s)] = [
                PathFlow(path=tuple(range(s + 1)), amount=0.0),
                PathFlow(path=(s,), amount=1.0),
            ]
        assert extract_serving_paths(prob, r) == []


class TestPlacementCost:
    def test_no_placement_full_path_cost(self):
        prob = make_line_problem()
        paths = extract_serving_paths(prob, origin_routing(prob))
        assert placement_cost(prob, paths, Placement()) == pytest.approx(24.0)

    def test_on_path_replica_truncates(self):
        prob = make_line_problem(cache_nodes={3: 1})
        paths = extract_serving_paths(prob, origin_routing(prob))
        item = prob.catalog[0]
        cost = placement_cost(prob, paths, Placement({(3, item): 1.0}))
        # rate-5 item served from node 3 (1 hop), other from origin (4 hops).
        assert cost == pytest.approx(5 * 1 + 1 * 4)

    def test_requester_replica_is_free(self):
        prob = make_line_problem()
        paths = extract_serving_paths(prob, origin_routing(prob))
        item = prob.catalog[0]
        cost = placement_cost(prob, paths, Placement({(4, item): 1.0}))
        assert cost == pytest.approx(5 * 0 + 1 * 4)

    def test_head_placement_does_not_matter(self):
        """x at the path head is outside the products of (13)."""
        prob = make_line_problem()
        paths = extract_serving_paths(prob, origin_routing(prob))
        item = prob.catalog[0]
        with_head = placement_cost(prob, paths, Placement({(0, item): 1.0}))
        assert with_head == pytest.approx(24.0)

    def test_fractional_multilinear(self):
        prob = make_line_problem()
        paths = extract_serving_paths(prob, origin_routing(prob))
        item = prob.catalog[0]
        half = placement_cost(prob, paths, Placement({(3, item): 0.5}))
        # item0: links (3,4) always, others weighted by (1 - 0.5).
        assert half == pytest.approx(5 * (1 + 0.5 * 3) + 1 * 4)

    def test_saving_complements_cost(self):
        prob = make_line_problem(cache_nodes={3: 1})
        paths = extract_serving_paths(prob, origin_routing(prob))
        item = prob.catalog[0]
        placement = Placement({(3, item): 1.0})
        assert placement_saving(prob, paths, placement) == pytest.approx(
            24.0 - placement_cost(prob, paths, placement)
        )


class TestOptimizePlacementLP:
    def test_selects_best_on_line(self):
        prob = make_line_problem(cache_nodes={3: 1})
        placement = optimize_placement_lp(prob, origin_routing(prob))
        assert (3, prob.catalog[0]) in placement
        assert placement.is_integral()

    def test_respects_capacity(self):
        prob = make_line_problem(cache_nodes={3: 1, 4: 1})
        placement = optimize_placement_lp(prob, origin_routing(prob))
        for v in (3, 4):
            assert placement.used_capacity(v, prob) <= 1 + 1e-9

    def test_empty_when_no_caches(self):
        prob = make_line_problem()
        placement = optimize_placement_lp(prob, origin_routing(prob))
        assert len(placement) == 0

    @settings(max_examples=10, deadline=None)
    @given(st.integers(min_value=0, max_value=200))
    def test_one_minus_one_over_e_guarantee(self, seed):
        import numpy as np

        rng = np.random.default_rng(seed)
        prob = make_line_problem(
            num_nodes=6,
            catalog_size=3,
            cache_nodes={2: 1, 4: 1},
            demand={
                (f"item{k}", 5): float(rng.integers(1, 10)) for k in range(3)
            },
        )
        routing = origin_routing(prob)
        paths = extract_serving_paths(prob, routing)
        placement = optimize_placement_lp(prob, routing)
        base = placement_cost(prob, paths, Placement())
        achieved = base - placement_cost(prob, paths, placement)
        optimum = base - brute_force_best_placement(prob, paths)
        assert achieved >= (1 - 1 / 2.718281828) * optimum - 1e-6


class TestOptimizePlacementGreedy:
    def test_matches_lp_on_simple_line(self):
        prob = make_line_problem(cache_nodes={3: 1})
        routing = origin_routing(prob)
        lp_placement = optimize_placement_lp(prob, routing)
        greedy_placement = optimize_placement_greedy(prob, routing)
        assert lp_placement.as_set() == greedy_placement.as_set()

    def test_heterogeneous_knapsack(self):
        net = line_topology(4)
        net.set_cache_capacity(2, 4.0)
        catalog = ("big", "small1", "small2")
        sizes = {"big": 4.0, "small1": 2.0, "small2": 2.0}
        demand = {("big", 3): 1.0, ("small1", 3): 6.0, ("small2", 3): 6.0}
        prob = ProblemInstance(
            net, catalog, demand, item_sizes=sizes,
            pinned=pin_full_catalog(catalog, [0]),
        )
        r = Routing()
        for (item, s) in demand:
            r.paths[(item, s)] = [PathFlow(path=(0, 1, 2, 3), amount=1.0)]
        placement = optimize_placement_greedy(prob, r)
        assert placement.used_capacity(2, prob) <= 4.0 + 1e-9
        assert (2, "small1") in placement and (2, "small2") in placement

    def test_pinned_on_path_reduces_gain(self):
        prob = make_line_problem(cache_nodes={2: 1})
        prob = ProblemInstance(
            network=prob.network,
            catalog=prob.catalog,
            demand=prob.demand,
            pinned=prob.pinned | {(3, prob.catalog[0])},
        )
        placement = optimize_placement_greedy(prob, origin_routing(prob))
        # item0 already pinned at 3 (1 hop); caching item0 at 2 saves nothing
        # downstream of 3, so item1 (4 hops from origin) wins at node 2.
        assert (2, prob.catalog[1]) in placement


class TestDispatch:
    def test_auto_uses_pipage_for_homogeneous(self):
        prob = make_line_problem(cache_nodes={3: 1})
        placement = optimize_placement(prob, origin_routing(prob), method="auto")
        assert placement.is_integral()

    def test_unknown_method(self):
        prob = make_line_problem()
        with pytest.raises(ValueError):
            optimize_placement(prob, origin_routing(prob), method="magic")
