"""Tests for the F_RNR set function (Lemma 4.1) and greedy placement."""

import itertools

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import (
    Placement,
    ProblemInstance,
    RNRCostSaving,
    greedy_rnr_placement,
    route_to_nearest_replica,
    routing_cost,
)
from repro.core.problem import pin_full_catalog
from repro.graph import line_topology

from tests.core.conftest import (
    brute_force_rnr_optimum,
    make_line_problem,
    random_uncapacitated_problem,
)


class TestRNRCostSaving:
    def test_marginal_gain_matches_add(self):
        prob = make_line_problem(cache_nodes={3: 1})
        saving = RNRCostSaving(prob)
        item = prob.catalog[0]
        gain = saving.marginal_gain(3, item)
        realized = saving.add(3, item)
        assert gain == pytest.approx(realized)
        assert gain == pytest.approx(5.0 * 3)  # rate 5, saving 4 -> 1 hops

    def test_serving_cost_tracks_rnr(self):
        prob = make_line_problem(cache_nodes={3: 1})
        saving = RNRCostSaving(prob)
        item = prob.catalog[0]
        saving.add(3, item)
        placement = Placement({(3, item): 1.0})
        routing = route_to_nearest_replica(prob, placement)
        assert saving.serving_cost() == pytest.approx(routing_cost(prob, routing))

    def test_value_accumulates(self):
        prob = make_line_problem(cache_nodes={3: 1, 4: 1})
        saving = RNRCostSaving(prob)
        g1 = saving.add(3, prob.catalog[0])
        g2 = saving.add(4, prob.catalog[0])
        assert saving.value() == pytest.approx(g1 + g2)

    def test_evaluate_matches_incremental(self):
        prob = make_line_problem(cache_nodes={3: 1, 4: 1})
        entries = frozenset({(3, prob.catalog[0]), (4, prob.catalog[1])})
        saving = RNRCostSaving(prob)
        expected = saving.evaluate(entries)
        inc = RNRCostSaving(prob)
        total = sum(inc.add(v, i) for (v, i) in sorted(entries, key=repr))
        assert total == pytest.approx(expected)

    @settings(max_examples=15, deadline=None)
    @given(st.integers(min_value=0, max_value=300))
    def test_monotone_and_submodular(self, seed):
        """Lemma 4.1 on random instances: diminishing returns + monotonicity."""
        prob = random_uncapacitated_problem(seed)
        ground = [
            (v, i)
            for v in (1, 2)
            for i in prob.catalog
            if (v, i) not in prob.pinned
        ]
        saving = RNRCostSaving(prob)
        # All subsets of a small ground set.
        values = {}
        for r in range(len(ground) + 1):
            for subset in itertools.combinations(ground, r):
                values[frozenset(subset)] = saving.evaluate(frozenset(subset))
        for subset, value in values.items():
            for extra in ground:
                if extra in subset:
                    continue
                bigger = frozenset(subset | {extra})
                # Monotone.
                assert values[bigger] >= value - 1e-9
                # Submodular: marginal on subset >= marginal on any superset.
                for other in ground:
                    if other in subset or other == extra:
                        continue
                    superset = frozenset(subset | {other})
                    lhs = values[frozenset(subset | {extra})] - value
                    rhs = values[frozenset(superset | {extra})] - values[superset]
                    assert lhs >= rhs - 1e-9


class TestGreedyPlacement:
    def test_respects_capacity(self):
        prob = make_line_problem(cache_nodes={3: 1})
        placement = greedy_rnr_placement(prob)
        assert placement.used_capacity(3, prob) <= 1.0 + 1e-9

    def test_picks_high_rate_item(self):
        prob = make_line_problem(cache_nodes={3: 1})
        placement = greedy_rnr_placement(prob)
        assert (3, prob.catalog[0]) in placement  # rate-5 item wins

    def test_never_places_pinned(self):
        prob = make_line_problem(cache_nodes={0: 5, 3: 1})
        placement = greedy_rnr_placement(prob)
        assert all((v, i) not in prob.pinned for (v, i) in placement)

    @settings(max_examples=10, deadline=None)
    @given(st.integers(min_value=0, max_value=200))
    def test_half_approximation(self, seed):
        """Greedy is a 1/2-approximation for the matroid case (Section 4.1.2)."""
        prob = random_uncapacitated_problem(seed)
        placement = greedy_rnr_placement(prob)
        routing = route_to_nearest_replica(prob, placement)
        cost = routing_cost(prob, routing)
        optimum = brute_force_rnr_optimum(prob)
        base = routing_cost(prob, route_to_nearest_replica(prob, Placement()))
        # Saving >= 1/2 optimal saving.
        assert base - cost >= 0.5 * (base - optimum) - 1e-6

    def test_heterogeneous_sizes_respected(self):
        net = line_topology(4)
        net.set_cache_capacity(2, 5.0)
        catalog = ("big", "small1", "small2")
        sizes = {"big": 5.0, "small1": 2.0, "small2": 2.0}
        demand = {("big", 3): 1.0, ("small1", 3): 10.0, ("small2", 3): 10.0}
        prob = ProblemInstance(
            net, catalog, demand, item_sizes=sizes,
            pinned=pin_full_catalog(catalog, [0]),
        )
        placement = greedy_rnr_placement(prob)
        assert placement.used_capacity(2, prob) <= 5.0 + 1e-9
        # Two small popular items beat the single big one.
        assert (2, "small1") in placement
        assert (2, "small2") in placement
        assert (2, "big") not in placement
