"""Tests for the exhaustive IC-IR reference solver."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import (
    algorithm1,
    alternating_optimization,
    check_feasibility,
    exact_icir,
    routing_cost,
)
from repro.exceptions import InfeasibleError, InvalidProblemError

from tests.core.conftest import brute_force_rnr_optimum, make_line_problem


class TestExactICIR:
    def test_matches_hand_computation(self):
        prob = make_line_problem(cache_nodes={3: 1})
        result = exact_icir(prob)
        # Cache the rate-5 item at node 3: cost 5*1 + 1*4.
        assert result.cost == pytest.approx(9.0)
        assert check_feasibility(prob, result.solution).feasible

    def test_matches_rnr_brute_force_when_uncapacitated(self):
        prob = make_line_problem(cache_nodes={3: 1, 4: 1})
        result = exact_icir(prob)
        assert result.cost == pytest.approx(brute_force_rnr_optimum(prob))

    def test_capacity_forces_costlier_routing(self):
        # Line 0-..-4, capacity 4 < demand 6: the popular item must be cached
        # at the requester; without a cache the instance is infeasible.
        prob = make_line_problem(cache_nodes={4: 1}, link_capacity=4.0)
        result = exact_icir(prob)
        assert result.solution.placement[(4, prob.catalog[0])] == 1.0
        assert result.cost == pytest.approx(1 * 4.0)

    def test_infeasible_raises(self):
        prob = make_line_problem(link_capacity=2.0)  # demand 6 over capacity 2
        with pytest.raises(InfeasibleError):
            exact_icir(prob)

    def test_placement_budget_guard(self):
        prob = make_line_problem(
            num_nodes=4,
            catalog_size=2,
            cache_nodes={1: 1, 2: 1, 3: 1},
        )
        with pytest.raises(InvalidProblemError):
            exact_icir(prob, max_placements=2)

    def test_counts_placements(self):
        prob = make_line_problem(cache_nodes={3: 1})
        result = exact_icir(prob)
        # node 3, capacity 1, 2 items: {}, {item0}, {item1}.
        assert result.placements_tried == 3

    def test_algorithm1_never_beats_exact(self):
        prob = make_line_problem(cache_nodes={3: 1, 4: 1})
        exact = exact_icir(prob)
        approx = routing_cost(prob, algorithm1(prob).solution.routing)
        assert approx >= exact.cost - 1e-9

    @settings(max_examples=8, deadline=None)
    @given(st.integers(min_value=0, max_value=100))
    def test_alternating_within_factor_on_tiny_instances(self, seed):
        """Empirical quality of the alternating heuristic vs the optimum."""
        rng = np.random.default_rng(seed)
        prob = make_line_problem(
            num_nodes=4,
            catalog_size=2,
            cache_nodes={2: 1},
            demand={
                ("item0", 3): float(rng.integers(2, 9)),
                ("item1", 3): float(rng.integers(1, 5)),
            },
            link_capacity=30.0,
        )
        exact = exact_icir(prob)
        alt = alternating_optimization(prob, rng=np.random.default_rng(1))
        cost = routing_cost(prob, alt.solution.routing)
        assert cost >= exact.cost - 1e-9
        assert cost <= 2.0 * exact.cost + 1e-9  # far better than worst case
