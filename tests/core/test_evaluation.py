"""Tests for routing cost / congestion / occupancy / feasibility checking."""

import math

import pytest

from repro.core import (
    Placement,
    Routing,
    Solution,
    check_feasibility,
    congestion,
    link_loads,
    max_cache_occupancy,
    routing_cost,
    summarize,
)
from repro.flow.decomposition import PathFlow

from tests.core.conftest import make_line_problem


def integral_routing_from_origin(prob):
    """Serve every request from node 0 along the line."""
    r = Routing()
    for (item, s) in prob.demand:
        r.paths[(item, s)] = [PathFlow(path=tuple(range(s + 1)), amount=1.0)]
    return r


class TestCostAndLoads:
    def test_routing_cost_from_origin(self):
        prob = make_line_problem()  # demand 5 + 1 at node 4, unit costs
        r = integral_routing_from_origin(prob)
        assert routing_cost(prob, r) == pytest.approx(6.0 * 4)

    def test_routing_cost_under_different_demand(self):
        prob = make_line_problem()
        r = integral_routing_from_origin(prob)
        true_demand = {req: 2 * rate for req, rate in prob.demand.items()}
        assert routing_cost(prob, r, demand=true_demand) == pytest.approx(48.0)

    def test_fractional_paths_weighted(self):
        prob = make_line_problem(cache_nodes={3: 1})
        item = prob.catalog[0]
        r = Routing()
        r.paths[(item, 4)] = [
            PathFlow(path=(0, 1, 2, 3, 4), amount=0.5),
            PathFlow(path=(3, 4), amount=0.5),
        ]
        r.paths[(prob.catalog[1], 4)] = [PathFlow(path=(0, 1, 2, 3, 4), amount=1.0)]
        assert routing_cost(prob, r) == pytest.approx(5 * (0.5 * 4 + 0.5 * 1) + 1 * 4)

    def test_link_loads_accumulate(self):
        prob = make_line_problem()
        r = integral_routing_from_origin(prob)
        loads = link_loads(prob, r)
        assert loads[(0, 1)] == pytest.approx(6.0)
        assert loads[(3, 4)] == pytest.approx(6.0)

    def test_congestion_zero_when_uncapacitated(self):
        prob = make_line_problem()
        r = integral_routing_from_origin(prob)
        assert congestion(prob, r) == 0.0

    def test_congestion_ratio(self):
        prob = make_line_problem(link_capacity=3.0)
        r = integral_routing_from_origin(prob)
        assert congestion(prob, r) == pytest.approx(2.0)


class TestZeroCapacityLinks:
    """Edge attributes mutated to zero capacity must not divide by zero."""

    @staticmethod
    def _zero_cap(prob, u, v):
        # set_link_capacity forbids cap <= 0, so mutate the edge directly —
        # exactly the scenario the ZeroDivisionError fix guards against.
        prob.network.graph.edges[u, v]["capacity"] = 0.0

    def test_congestion_inf_when_zero_cap_link_loaded(self):
        prob = make_line_problem(link_capacity=3.0)
        self._zero_cap(prob, 1, 2)
        r = integral_routing_from_origin(prob)  # every path crosses (1, 2)
        assert congestion(prob, r) == math.inf

    def test_congestion_ignores_unloaded_zero_cap_link(self):
        prob = make_line_problem(link_capacity=3.0)
        self._zero_cap(prob, 4, 3)  # reverse link: never used
        r = integral_routing_from_origin(prob)
        assert congestion(prob, r) == pytest.approx(2.0)

    def test_utilization_profile_zero_cap_entries(self):
        from repro.core import utilization_profile

        prob = make_line_problem(link_capacity=3.0)
        self._zero_cap(prob, 1, 2)
        self._zero_cap(prob, 4, 3)
        r = integral_routing_from_origin(prob)
        # Register the reverse link with zero load (a degenerate flow).
        item = prob.catalog[0]
        r.paths[(item, 4)] = r.paths[(item, 4)] + [
            PathFlow(path=(4, 3), amount=0.0)
        ]
        profile = utilization_profile(prob, r)
        assert profile[(1, 2)] == math.inf  # loaded, no capacity
        assert profile[(4, 3)] == 0.0  # zero load, no capacity
        assert profile[(0, 1)] == pytest.approx(2.0)

    def test_path_stretch_ignores_zero_capacity_caches(self):
        from repro.core import path_stretch

        # Cache at node 3 -> floor for requester 4 is distance(3, 4) = 1,
        # so origin-served requests look stretched by 4x.
        prob = make_line_problem(cache_nodes={3: 1})
        r = integral_routing_from_origin(prob)
        assert path_stretch(prob, r) == pytest.approx(4.0)
        # Zero out that cache: it can never hold a copy, so the floor
        # falls back to the pinned origin and the stretch is exactly 1.
        prob.network.set_cache_capacity(3, 0.0)
        assert path_stretch(prob, r) == pytest.approx(1.0)


class TestOccupancy:
    def test_max_cache_occupancy(self):
        prob = make_line_problem(cache_nodes={3: 2})
        p = Placement({(3, prob.catalog[0]): 1.0})
        assert max_cache_occupancy(prob, p) == pytest.approx(0.5)

    def test_occupancy_infinite_when_no_capacity(self):
        prob = make_line_problem(cache_nodes={3: 1})
        p = Placement({(1, prob.catalog[0]): 1.0})  # node 1 has no cache
        # node 1 is not a cache node; occupancy only scans cache nodes
        assert max_cache_occupancy(prob, p) == pytest.approx(0.0)

    def test_overfull_cache_reported(self):
        prob = make_line_problem(cache_nodes={3: 1})
        p = Placement({(3, prob.catalog[0]): 1.0, (3, prob.catalog[1]): 1.0})
        assert max_cache_occupancy(prob, p) == pytest.approx(2.0)


class TestFeasibility:
    def test_feasible_solution(self):
        prob = make_line_problem()
        sol = Solution(Placement(), integral_routing_from_origin(prob))
        report = check_feasibility(prob, sol)
        assert report.feasible
        assert report.violations == []

    def test_cache_violation(self):
        prob = make_line_problem(cache_nodes={3: 1})
        p = Placement({(3, prob.catalog[0]): 1.0, (3, prob.catalog[1]): 1.0})
        sol = Solution(p, integral_routing_from_origin(prob))
        report = check_feasibility(prob, sol)
        assert not report.cache_ok
        assert not report.feasible

    def test_link_violation(self):
        prob = make_line_problem(link_capacity=2.0)
        sol = Solution(Placement(), integral_routing_from_origin(prob))
        report = check_feasibility(prob, sol)
        assert not report.links_ok

    def test_unserved_request(self):
        prob = make_line_problem()
        sol = Solution(Placement(), Routing())
        report = check_feasibility(prob, sol)
        assert not report.served_ok

    def test_source_without_content(self):
        prob = make_line_problem()
        r = Routing()
        for (item, s) in prob.demand:
            # node 2 serves but stores nothing and is not pinned
            r.paths[(item, s)] = [PathFlow(path=(2, 3, 4), amount=1.0)]
        report = check_feasibility(prob, Solution(Placement(), r))
        assert not report.sources_ok

    def test_path_not_ending_at_requester(self):
        prob = make_line_problem()
        r = Routing()
        for (item, s) in prob.demand:
            r.paths[(item, s)] = [PathFlow(path=(0, 1, 2, 3), amount=1.0)]
        report = check_feasibility(prob, Solution(Placement(), r))
        assert not report.sources_ok

    def test_missing_link_detected(self):
        prob = make_line_problem()
        r = Routing()
        for (item, s) in prob.demand:
            r.paths[(item, s)] = [PathFlow(path=(0, 4), amount=1.0)]
        report = check_feasibility(prob, Solution(Placement(), r))
        assert not report.links_ok

    def test_summarize_bundle(self):
        prob = make_line_problem()
        sol = Solution(Placement(), integral_routing_from_origin(prob))
        stats = summarize(prob, sol)
        assert set(stats) == {
            "routing_cost",
            "congestion",
            "max_cache_occupancy",
            "cache_hit_rate",
            "feasible",
        }
        assert stats["feasible"] == 1.0
