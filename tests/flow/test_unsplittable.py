"""Tests for the Skutella splittable->unsplittable rounding (Lemma 4.6)."""

import networkx as nx
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.exceptions import InvalidProblemError, SolverError
from repro.flow import min_cost_single_source_flow, round_to_unsplittable


def build_flow(graph, source, demands):
    flow, cost = min_cost_single_source_flow(graph, source, demands)
    return flow, cost


def path_cost(costs, path):
    return sum(costs.get((u, v), 0.0) for u, v in zip(path[:-1], path[1:]))


def check_lemma_4_6(costs, flow, commodities, paths, flow_cost):
    """Assert the two guarantees of Lemma 4.6."""
    # (i) total unsplittable cost <= cost of the splittable flow.
    total = sum(d * path_cost(costs, paths[cid]) for cid, _, d in commodities)
    assert total <= flow_cost + 1e-6
    # (ii) on each link, all but the largest commodity fit in the flow.
    loads: dict = {}
    for cid, _, d in commodities:
        for e in zip(paths[cid][:-1], paths[cid][1:]):
            loads.setdefault(e, []).append(d)
    for e, ds in loads.items():
        assert sum(ds) - max(ds) <= flow.get(e, 0.0) + 1e-6


class TestRounding:
    def test_single_commodity_takes_flow_path(self):
        g = nx.DiGraph()
        g.add_edge("s", "a", cost=1.0, capacity=10.0)
        g.add_edge("a", "t", cost=1.0, capacity=10.0)
        flow, cost = build_flow(g, "s", {"t": 2.0})
        costs = {(u, v): d["cost"] for u, v, d in g.edges(data=True)}
        paths = round_to_unsplittable(costs, "s", [("c", "t", 2.0)], flow)
        assert paths["c"] == ("s", "a", "t")

    def test_split_flow_rounds_to_single_path(self):
        # Splittable optimum splits 1+1 over two parallel paths; the rounding
        # must pick one path for the single demand-2 commodity.
        g = nx.DiGraph()
        g.add_edge("s", "a", cost=1.0, capacity=1.0)
        g.add_edge("a", "t", cost=1.0, capacity=1.0)
        g.add_edge("s", "b", cost=1.0, capacity=1.0)
        g.add_edge("b", "t", cost=1.0, capacity=1.0)
        flow, cost = build_flow(g, "s", {"t": 2.0})
        costs = {(u, v): d["cost"] for u, v, d in g.edges(data=True)}
        commodities = [("c", "t", 2.0)]
        paths = round_to_unsplittable(costs, "s", commodities, flow)
        assert paths["c"] in {("s", "a", "t"), ("s", "b", "t")}
        check_lemma_4_6(costs, flow, commodities, paths, cost)

    def test_two_commodities_power_of_two(self):
        g = nx.DiGraph()
        for mid in ("a", "b"):
            g.add_edge("s", mid, cost=1.0, capacity=3.0)
            g.add_edge(mid, "t1", cost=1.0, capacity=3.0)
            g.add_edge(mid, "t2", cost=2.0, capacity=3.0)
        demands = {"t1": 1.0, "t2": 2.0}
        flow, cost = build_flow(g, "s", demands)
        costs = {(u, v): d["cost"] for u, v, d in g.edges(data=True)}
        commodities = [("c1", "t1", 1.0), ("c2", "t2", 2.0)]
        paths = round_to_unsplittable(costs, "s", commodities, flow)
        assert paths["c1"][0] == "s" and paths["c1"][-1] == "t1"
        assert paths["c2"][0] == "s" and paths["c2"][-1] == "t2"
        check_lemma_4_6(costs, flow, commodities, paths, cost)

    def test_sink_at_source(self):
        paths = round_to_unsplittable({}, "s", [("c", "s", 1.0)], {})
        assert paths["c"] == ("s",)

    def test_non_power_of_two_rejected(self):
        with pytest.raises(InvalidProblemError):
            round_to_unsplittable(
                {}, "s", [("a", "t", 1.0), ("b", "t", 3.0)], {("s", "t"): 4.0}
            )

    def test_nonpositive_demand_rejected(self):
        with pytest.raises(InvalidProblemError):
            round_to_unsplittable({}, "s", [("a", "t", 0.0)], {})

    def test_duplicate_ids_rejected(self):
        with pytest.raises(InvalidProblemError):
            round_to_unsplittable(
                {}, "s", [("a", "t", 1.0), ("a", "t", 1.0)], {("s", "t"): 2.0}
            )

    def test_missing_support_raises(self):
        with pytest.raises(SolverError):
            round_to_unsplittable({}, "s", [("a", "t", 1.0)], {})

    def test_empty_commodities(self):
        assert round_to_unsplittable({}, "s", [], {}) == {}

    @settings(max_examples=25, deadline=None)
    @given(
        st.integers(min_value=0, max_value=800),
        st.lists(st.sampled_from([1.0, 2.0, 4.0]), min_size=1, max_size=6),
    )
    def test_lemma_4_6_on_random_instances(self, seed, demand_values):
        g = nx.gnp_random_graph(8, 0.5, seed=seed, directed=True)
        for u, v in g.edges:
            g.edges[u, v]["cost"] = float((u + 3 * v + seed) % 6 + 1)
            g.edges[u, v]["capacity"] = 40.0
        if 0 not in g:
            return
        reachable = nx.descendants(g, 0)
        if not reachable:
            return
        sinks = sorted(reachable)
        commodities = [
            (f"c{k}", sinks[k % len(sinks)], d) for k, d in enumerate(demand_values)
        ]
        agg: dict = {}
        for _, t, d in commodities:
            agg[t] = agg.get(t, 0.0) + d
        flow, cost = build_flow(g, 0, agg)
        costs = {(u, v): d["cost"] for u, v, d in g.edges(data=True)}
        paths = round_to_unsplittable(costs, 0, commodities, flow)
        for cid, t, _ in commodities:
            assert paths[cid][0] == 0
            assert paths[cid][-1] == t
            # Loopless.
            assert len(set(paths[cid])) == len(paths[cid])
        check_lemma_4_6(costs, flow, commodities, paths, cost)
