"""LPTemplate parity: patched template solves == fresh-assembly solves.

The freeze/patch contract (see :class:`repro.flow.lp.LPTemplate`) promises
that a patched template is indistinguishable from re-running the full
assembly with the new numbers: identical materialized arrays, therefore
bit-identical HiGHS results.  These tests build 20+ random LP instances,
freeze one variant, patch it into the other, and compare against a fresh
:class:`~repro.flow.lp.LPBuilder` — arrays and solutions compared exactly,
no tolerances.
"""

import numpy as np
import pytest

from repro.exceptions import InfeasibleError, InvalidProblemError, SolverError
from repro.flow.lp import LPBuilder

SEEDS = range(22)


def random_instance(seed: int):
    """A feasible, bounded random LP in two interchangeable parameterizations.

    Variables live in one block with finite [0, ub] bounds; <= rows have
    non-negative coefficients and non-negative rhs (x = 0 stays feasible for
    every draw) plus one == row tying a pair of variables together.
    Returns ``(structure, params_a, params_b)`` where the params share the
    sparsity pattern and differ only in rhs / bounds / objective.
    """
    rng = np.random.default_rng(seed)
    n = int(rng.integers(4, 9))
    m = int(rng.integers(2, 5))
    rows = np.repeat(np.arange(m, dtype=np.intp), n)
    cols = np.tile(np.arange(n, dtype=np.intp), m)
    data = rng.uniform(0.1, 2.0, size=m * n)
    eq_pair = rng.choice(n, size=2, replace=False)

    def params(r):
        return {
            "c": r.uniform(0.5, 3.0, size=n),
            "ub": r.uniform(1.0, 4.0, size=n),
            "b_ub": r.uniform(1.0, 6.0, size=m),
            "b_eq": float(r.uniform(0.0, 0.5)),
        }

    structure = {"n": n, "m": m, "rows": rows, "cols": cols, "data": data,
                 "eq_pair": eq_pair}
    return structure, params(rng), params(np.random.default_rng(seed + 500))


def build(structure, p) -> LPBuilder:
    lp = LPBuilder(sense="min")
    block = lp.add_variable_block(
        "x", (structure["n"],), lb=0.0, ub=p["ub"], cost=p["c"]
    )
    lp.add_le_batch(
        structure["rows"],
        block.flat(structure["cols"]),
        structure["data"],
        p["b_ub"],
    )
    i, j = structure["eq_pair"]
    lp.add_eq_batch(
        np.zeros(2, dtype=np.intp),
        block.flat(np.asarray([i, j], dtype=np.intp)),
        np.asarray([1.0, -1.0]),
        np.asarray([p["b_eq"]]),
    )
    return lp


def patch(template, structure, p) -> None:
    template.set_block_objective("x", p["c"])
    template.set_block_bounds("x", ub=p["ub"])
    template.set_b_ub(np.arange(structure["m"], dtype=np.intp), p["b_ub"])
    template.set_b_eq([0], [p["b_eq"]])


class TestFreezeParity:
    @pytest.mark.parametrize("seed", SEEDS)
    def test_unpatched_template_matches_builder(self, seed):
        structure, pa, _ = random_instance(seed)
        builder = build(structure, pa)
        template = builder.freeze()
        a = builder.solve()
        b = template.solve()
        assert a.objective == b.objective
        assert np.array_equal(a.block("x"), b.block("x"))

    @pytest.mark.parametrize("seed", SEEDS)
    def test_patched_template_matches_fresh_assembly(self, seed):
        structure, pa, pb = random_instance(seed)
        template = build(structure, pa).freeze()
        patch(template, structure, pb)
        fresh = build(structure, pb)
        # The patched arrays must equal a fresh materialization exactly...
        got = template.materialized()
        want = fresh.materialize()
        assert np.array_equal(got.c, want.c)
        assert np.array_equal(got.b_ub, want.b_ub)
        assert np.array_equal(got.b_eq, want.b_eq)
        assert np.array_equal(got.bounds, want.bounds)
        assert np.array_equal(got.a_ub.indptr, want.a_ub.indptr)
        assert np.array_equal(got.a_ub.indices, want.a_ub.indices)
        assert np.array_equal(got.a_ub.data, want.a_ub.data)
        # ...so the solves are bit-identical too.
        a = fresh.solve()
        b = template.solve()
        assert a.objective == b.objective
        assert np.array_equal(a.block("x"), b.block("x"))

    @pytest.mark.parametrize("seed", range(5))
    def test_repatching_back_restores_original(self, seed):
        structure, pa, pb = random_instance(seed)
        builder = build(structure, pa)
        template = builder.freeze()
        original = template.solve()
        patch(template, structure, pb)
        template.solve()
        patch(template, structure, pa)
        again = template.solve()
        assert again.objective == original.objective
        assert np.array_equal(again.block("x"), original.block("x"))

    def test_freeze_is_a_snapshot(self):
        structure, pa, _ = random_instance(0)
        builder = build(structure, pa)
        template = builder.freeze()
        before = template.solve().objective
        # Mutate the builder after freeze: the template must not notice.
        builder.add_variable("extra", lb=1.0, ub=1.0)
        builder.add_objective_terms({"extra": 100.0})
        assert template.solve().objective == before


class TestKeyedPatching:
    def build_keyed(self):
        lp = LPBuilder(sense="min")
        lp.add_variable("a", lb=0.0, ub=2.0)
        lp.add_variable("b", lb=0.0, ub=2.0)
        lp.add_objective_terms({"a": 1.0, "b": 2.0})
        lp.add_ge({"a": 1.0, "b": 1.0}, 1.0)
        return lp

    def test_ge_rows_patch_negated(self):
        template = self.build_keyed().freeze()
        # Fresh assembly of a >= 1.5 constraint stores rhs -1.5.
        template.set_b_ub([0], [-1.5])
        fresh = self.build_keyed()
        fresh_rhs = fresh.materialize().b_ub.copy()
        solved = template.solve()
        assert solved.values["a"] + solved.values["b"] >= 1.5 - 1e-9
        assert fresh_rhs[0] == -1.0  # unpatched baseline for contrast

    def test_set_bounds_and_objective_by_key(self):
        template = self.build_keyed().freeze()
        template.set_objective("a", 5.0)
        template.set_bounds("b", ub=0.25)
        solved = template.solve()
        # b is now both cheaper and capped; the >= 1 row forces a >= 0.75.
        assert solved.values["b"] == pytest.approx(0.25)
        assert solved.values["a"] == pytest.approx(0.75)


class TestGuards:
    def test_freeze_empty_lp_raises(self):
        with pytest.raises(SolverError):
            LPBuilder().freeze()

    def test_freeze_trivially_infeasible_raises(self):
        lp = LPBuilder()
        lp.add_variable("x", lb=0.0, ub=1.0)
        lp.add_le({"x": 1.0}, float("-inf"))  # can never hold
        with pytest.raises(InfeasibleError):
            lp.freeze()

    def test_nan_rhs_patch_rejected(self):
        structure, pa, _ = random_instance(1)
        template = build(structure, pa).freeze()
        with pytest.raises(InvalidProblemError):
            template.set_b_ub([0], [float("nan")])

    def test_nonfinite_eq_patch_rejected(self):
        structure, pa, _ = random_instance(1)
        template = build(structure, pa).freeze()
        with pytest.raises(InvalidProblemError):
            template.set_b_eq([0], [float("inf")])

    def test_nan_bounds_patch_rejected(self):
        structure, pa, _ = random_instance(1)
        template = build(structure, pa).freeze()
        with pytest.raises(InvalidProblemError):
            template.set_block_bounds("x", ub=float("nan"))

    def test_nan_objective_patch_rejected(self):
        structure, pa, _ = random_instance(1)
        template = build(structure, pa).freeze()
        with pytest.raises(InvalidProblemError):
            template.set_objective(("x", 0), float("nan"))

    def test_patch_without_ub_rows_raises(self):
        lp = LPBuilder()
        lp.add_variable("x", lb=0.0, ub=1.0)
        lp.add_eq({"x": 1.0}, 0.5)
        template = lp.freeze()
        with pytest.raises(InvalidProblemError):
            template.set_b_ub([0], [1.0])


class TestMaxSense:
    def test_max_objective_patches_with_user_sign(self):
        lp = LPBuilder(sense="max")
        lp.add_variable("x", lb=0.0, ub=3.0)
        lp.add_objective_terms({"x": 1.0})
        template = lp.freeze()
        template.set_objective("x", 2.0)
        solved = template.solve()
        assert solved.objective == pytest.approx(6.0)
        assert solved.values["x"] == pytest.approx(3.0)
