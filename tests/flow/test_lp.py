"""Tests for the sparse LP builder (keyed API, array API, edge cases)."""

import math

import numpy as np
import pytest

from repro.exceptions import (
    InfeasibleError,
    InvalidProblemError,
    SolverError,
    UnboundedError,
)
from repro.flow import LPBuilder


class TestLPBuilder:
    def test_simple_minimization(self):
        lp = LPBuilder("min")
        lp.add_variable("x", lb=0, cost=1.0)
        lp.add_variable("y", lb=0, cost=2.0)
        lp.add_ge({"x": 1.0, "y": 1.0}, 4.0)
        sol = lp.solve()
        assert sol.objective == pytest.approx(4.0)
        assert sol["x"] == pytest.approx(4.0)
        assert sol["y"] == pytest.approx(0.0)

    def test_simple_maximization(self):
        lp = LPBuilder("max")
        lp.add_variable("x", lb=0, ub=3, cost=5.0)
        sol = lp.solve()
        assert sol.objective == pytest.approx(15.0)

    def test_equality_constraint(self):
        lp = LPBuilder("min")
        lp.add_variable("x", cost=1.0)
        lp.add_variable("y", cost=1.0)
        lp.add_eq({"x": 1.0, "y": 2.0}, 6.0)
        sol = lp.solve()
        assert sol["x"] + 2 * sol["y"] == pytest.approx(6.0)
        assert sol.objective == pytest.approx(3.0)  # all mass on y

    def test_le_constraint_binds(self):
        lp = LPBuilder("max")
        lp.add_variable("x", cost=1.0)
        lp.add_le({"x": 2.0}, 10.0)
        assert lp.solve()["x"] == pytest.approx(5.0)

    def test_infinite_rhs_skipped(self):
        lp = LPBuilder("max")
        lp.add_variable("x", ub=1.0, cost=1.0)
        lp.add_le({"x": 1.0}, math.inf)
        assert lp.num_constraints == 0
        assert lp.solve().objective == pytest.approx(1.0)

    def test_duplicate_variable_rejected(self):
        lp = LPBuilder()
        lp.add_variable("x")
        with pytest.raises(ValueError):
            lp.add_variable("x")

    def test_unknown_sense_rejected(self):
        with pytest.raises(ValueError):
            LPBuilder("maximize-ish")

    def test_infeasible_raises(self):
        lp = LPBuilder("min")
        lp.add_variable("x", lb=0, ub=1, cost=1.0)
        lp.add_ge({"x": 1.0}, 5.0)
        with pytest.raises(InfeasibleError):
            lp.solve()

    def test_empty_lp_raises(self):
        with pytest.raises(SolverError):
            LPBuilder().solve()

    def test_unbounded_raises_solver_error(self):
        lp = LPBuilder("max")
        lp.add_variable("x", cost=1.0)
        with pytest.raises(SolverError):
            lp.solve()

    def test_add_objective_terms_accumulates(self):
        lp = LPBuilder("max")
        lp.add_variable("x", ub=2.0)
        lp.add_objective_terms({"x": 1.0})
        lp.add_objective_terms({"x": 1.5})
        assert lp.solve().objective == pytest.approx(5.0)

    def test_tuple_keys(self):
        lp = LPBuilder("min")
        lp.add_variable(("f", "a", "b"), lb=1.0, cost=2.0)
        sol = lp.solve()
        assert sol[("f", "a", "b")] == pytest.approx(1.0)

    def test_solution_get_default(self):
        lp = LPBuilder("min")
        lp.add_variable("x", lb=0.5, cost=1.0)
        sol = lp.solve()
        assert sol.get("missing", 7.0) == 7.0

    def test_coefficients_on_same_key_accumulate_in_row(self):
        lp = LPBuilder("max")
        lp.add_variable("x", cost=1.0)
        # x + x <= 4  ->  x <= 2
        lp._ub_rows.append((lp._row({"x": 1.0}), 4.0))
        lp.add_le({"x": 2.0}, 4.0)
        assert lp.solve()["x"] == pytest.approx(2.0)


class _DuplicateKeyMapping(dict):
    """A Mapping whose items() yields the same key twice (for _row tests)."""

    def items(self):
        for key, coef in super().items():
            yield key, coef
            yield key, coef


class TestLPBuilderEdgeCases:
    def test_duplicate_keys_aggregate_in_row(self):
        lp = LPBuilder("max")
        lp.add_variable("x", cost=1.0)
        # items() yields ("x", 1.0) twice -> the row must read 2x <= 4.
        lp.add_le(_DuplicateKeyMapping({"x": 1.0}), 4.0)
        assert lp.solve()["x"] == pytest.approx(2.0)

    def test_empty_objective_solves_to_zero(self):
        lp = LPBuilder("min")
        lp.add_variable("x", lb=0.0, ub=1.0)
        lp.add_ge({"x": 1.0}, 0.5)
        sol = lp.solve()
        assert sol.objective == 0.0
        assert 0.5 - 1e-9 <= sol["x"] <= 1.0 + 1e-9

    def test_zero_cost_not_stored_nonzero_is(self):
        lp = LPBuilder("min")
        lp.add_variable("x", ub=1.0, cost=0.0)
        lp.add_variable("y", ub=1.0, cost=2.0)
        assert lp._objective == {1: 2.0}
        # A zero cost can still be set explicitly afterwards.
        lp.set_objective_coefficient("x", -1.0)
        sol = lp.solve()
        assert sol.objective == pytest.approx(-1.0)
        assert sol["x"] == pytest.approx(1.0)

    def test_max_sense_sign_round_trip(self):
        lp = LPBuilder("max")
        lp.add_variable("x", ub=4.0, cost=2.5)
        lp.add_variable("y", ub=1.0, cost=-1.0)
        sol = lp.solve()
        # Internally negated twice: the reported optimum is the max itself.
        assert sol.objective == pytest.approx(10.0)
        assert sol["y"] == pytest.approx(0.0)

    def test_nan_rhs_raises_invalid_problem(self):
        for method in ("add_le", "add_ge", "add_eq"):
            lp = LPBuilder("min")
            lp.add_variable("x")
            with pytest.raises(InvalidProblemError):
                getattr(lp, method)({"x": 1.0}, float("nan"))

    def test_nan_coefficient_raises_invalid_problem(self):
        lp = LPBuilder("min")
        lp.add_variable("x")
        with pytest.raises(InvalidProblemError):
            lp.add_le({"x": float("nan")}, 1.0)

    def test_ge_infinite_rhs_is_infeasible_not_silent(self):
        lp = LPBuilder("min")
        lp.add_variable("x", ub=1.0, cost=1.0)
        lp.add_ge({"x": 1.0}, math.inf)
        with pytest.raises(InfeasibleError, match="trivially infeasible"):
            lp.solve()

    def test_le_minus_infinite_rhs_is_infeasible(self):
        lp = LPBuilder("min")
        lp.add_variable("x", ub=1.0, cost=1.0)
        lp.add_le({"x": 1.0}, -math.inf)
        with pytest.raises(InfeasibleError, match="trivially infeasible"):
            lp.solve()

    def test_eq_infinite_rhs_is_infeasible(self):
        lp = LPBuilder("min")
        lp.add_variable("x", ub=1.0, cost=1.0)
        lp.add_eq({"x": 1.0}, math.inf)
        with pytest.raises(InfeasibleError, match="trivially infeasible"):
            lp.solve()

    def test_ge_minus_infinite_rhs_skipped(self):
        lp = LPBuilder("min")
        lp.add_variable("x", ub=1.0, cost=1.0)
        lp.add_ge({"x": 1.0}, -math.inf)
        assert lp.num_constraints == 0
        assert lp.solve().objective == pytest.approx(0.0)

    def test_nan_bounds_raise(self):
        lp = LPBuilder("min")
        with pytest.raises(InvalidProblemError):
            lp.add_variable("x", lb=float("nan"))


class _FakeResult:
    def __init__(self, status, message="synthetic"):
        self.status = status
        self.message = message
        self.x = np.zeros(1)
        self.fun = 0.0


class TestSolveStatuses:
    """Regression tests: every non-zero linprog status maps to a clear error."""

    def _builder(self):
        lp = LPBuilder("min")
        lp.add_variable("x", ub=1.0, cost=1.0)
        return lp

    def test_status_1_iteration_limit_is_solver_error(self, monkeypatch):
        monkeypatch.setattr(
            "repro.flow.lp.linprog", lambda *a, **k: _FakeResult(1)
        )
        with pytest.raises(SolverError, match="status 1"):
            self._builder().solve()

    def test_status_2_is_infeasible(self, monkeypatch):
        monkeypatch.setattr(
            "repro.flow.lp.linprog", lambda *a, **k: _FakeResult(2)
        )
        with pytest.raises(InfeasibleError):
            self._builder().solve()

    def test_status_3_is_unbounded_with_actionable_message(self, monkeypatch):
        monkeypatch.setattr(
            "repro.flow.lp.linprog", lambda *a, **k: _FakeResult(3)
        )
        with pytest.raises(UnboundedError, match="unbounded"):
            self._builder().solve()

    def test_status_4_numerical_is_solver_error(self, monkeypatch):
        monkeypatch.setattr(
            "repro.flow.lp.linprog", lambda *a, **k: _FakeResult(4)
        )
        with pytest.raises(SolverError, match="status 4"):
            self._builder().solve()

    def test_unbounded_error_is_a_solver_error(self):
        # Callers that caught SolverError before keep working.
        assert issubclass(UnboundedError, SolverError)
        lp = LPBuilder("max")
        lp.add_variable("x", cost=1.0)
        with pytest.raises(UnboundedError, match="unbounded"):
            lp.solve()


class TestArrayAPI:
    def test_batch_vs_dict_hand_checked(self):
        # min x + 2y  s.t.  x + y >= 4, x <= 3  ->  x=3, y=1, objective 5.
        keyed = LPBuilder("min")
        keyed.add_variable(("v", 0), cost=1.0)
        keyed.add_variable(("v", 1), cost=2.0)
        keyed.add_ge({("v", 0): 1.0, ("v", 1): 1.0}, 4.0)
        keyed.add_le({("v", 0): 1.0}, 3.0)
        ks = keyed.solve()

        batched = LPBuilder("min")
        block = batched.add_variable_block("v", 2, cost=[1.0, 2.0])
        batched.add_ge_batch([0, 0], block.flat([0, 1]), [1.0, 1.0], [4.0])
        batched.add_le_batch([0], [block.flat(0)], [1.0], [3.0])
        bs = batched.solve()

        assert bs.objective == ks.objective == pytest.approx(5.0)
        assert bs.values == ks.values
        assert bs[("v", 0)] == pytest.approx(3.0)
        assert bs[("v", 1)] == pytest.approx(1.0)

    def test_block_keys_resolve_to_multi_index(self):
        lp = LPBuilder("min")
        lp.add_variable_block("x", (2, 3), lb=1.0, cost=1.0)
        sol = lp.solve()
        assert set(sol.values) == {("x", i, j) for i in range(2) for j in range(3)}
        assert sol[("x", 1, 2)] == pytest.approx(1.0)
        assert sol.block("x").shape == (2, 3)
        np.testing.assert_allclose(sol.block("x"), 1.0)

    def test_block_bounds_and_cost_broadcast(self):
        lp = LPBuilder("min")
        lp.add_variable_block("x", 3, lb=[1.0, 2.0, 3.0], ub=10.0, cost=[1.0, 1.0, -1.0])
        sol = lp.solve()
        np.testing.assert_allclose(sol.block("x"), [1.0, 2.0, 10.0])

    def test_flat_vectorized_and_scalar(self):
        lp = LPBuilder("min")
        lp.add_variable("pad")  # offset the block
        block = lp.add_variable_block("x", (2, 4))
        assert block.flat(1, 3) == 1 + 1 * 4 + 3
        np.testing.assert_array_equal(
            block.flat(np.array([0, 1]), np.array([2, 0])), [1 + 2, 1 + 4]
        )
        with pytest.raises(ValueError):
            block.flat(1)

    def test_duplicate_block_name_rejected(self):
        lp = LPBuilder("min")
        lp.add_variable_block("x", 2)
        with pytest.raises(ValueError):
            lp.add_variable_block("x", 3)

    def test_batch_validation_errors(self):
        lp = LPBuilder("min")
        block = lp.add_variable_block("x", 2)
        with pytest.raises(InvalidProblemError, match="lengths differ"):
            lp.add_le_batch([0], block.flat([0, 1]), [1.0, 1.0], [1.0])
        with pytest.raises(InvalidProblemError, match="row index"):
            lp.add_le_batch([5], [block.flat(0)], [1.0], [1.0])
        with pytest.raises(InvalidProblemError, match="column index"):
            lp.add_le_batch([0], [7], [1.0], [1.0])
        with pytest.raises(InvalidProblemError, match="NaN"):
            lp.add_le_batch([0], [block.flat(0)], [1.0], [float("nan")])
        with pytest.raises(InvalidProblemError, match="non-finite"):
            lp.add_eq_batch([0], [block.flat(0)], [math.inf], [1.0])

    def test_le_batch_drops_vacuous_rows_keeps_rest(self):
        lp = LPBuilder("max")
        block = lp.add_variable_block("x", 2, ub=3.0, cost=1.0)
        lp.add_le_batch(
            [0, 1, 2],
            block.flat([0, 1, 0]),
            [1.0, 1.0, 1.0],
            [math.inf, 2.0, math.inf],
        )
        assert lp.num_constraints == 1
        sol = lp.solve()
        assert sol[("x", 1)] == pytest.approx(2.0)
        assert sol.objective == pytest.approx(5.0)

    def test_le_batch_minus_inf_marks_infeasible(self):
        lp = LPBuilder("min")
        block = lp.add_variable_block("x", 1, ub=1.0)
        lp.add_le_batch([0], [block.flat(0)], [1.0], [-math.inf])
        with pytest.raises(InfeasibleError, match="trivially infeasible"):
            lp.solve()

    def test_ge_batch_plus_inf_marks_infeasible(self):
        lp = LPBuilder("min")
        block = lp.add_variable_block("x", 1, ub=1.0)
        lp.add_ge_batch([0], [block.flat(0)], [1.0], [math.inf])
        with pytest.raises(InfeasibleError, match="trivially infeasible"):
            lp.solve()

    def test_eq_batch_inf_marks_infeasible(self):
        lp = LPBuilder("min")
        block = lp.add_variable_block("x", 1, ub=1.0)
        lp.add_eq_batch([0], [block.flat(0)], [1.0], [math.inf])
        with pytest.raises(InfeasibleError, match="trivially infeasible"):
            lp.solve()

    def test_duplicate_coo_entries_are_summed(self):
        lp = LPBuilder("max")
        block = lp.add_variable_block("x", 1, cost=1.0)
        # x + x <= 4  ->  x <= 2.
        lp.add_le_batch([0, 0], block.flat([0, 0]), [1.0, 1.0], [4.0])
        assert lp.solve()[("x", 0)] == pytest.approx(2.0)

    def test_mixed_keyed_and_block_variables(self):
        lp = LPBuilder("min")
        lp.add_variable("y", cost=1.0)
        block = lp.add_variable_block("x", 2, cost=1.0)
        # y + x0 + x1 >= 3 with all costs 1: any split is optimal at 3.
        lp.add_ge_batch(
            [0, 0, 0], [0, block.flat(0), block.flat(1)], [1.0, 1.0, 1.0], [3.0]
        )
        sol = lp.solve()
        assert sol.objective == pytest.approx(3.0)

    def test_nan_block_cost_raises(self):
        lp = LPBuilder("min")
        with pytest.raises(InvalidProblemError):
            lp.add_variable_block("x", 2, cost=[1.0, float("nan")])

    def test_empty_batch_is_noop(self):
        lp = LPBuilder("min")
        lp.add_variable_block("x", 2, ub=1.0)
        lp.add_le_batch([], [], [], [])
        assert lp.num_constraints == 0

    def test_materialize_canonical_between_apis(self):
        keyed = LPBuilder("min")
        keyed.add_variable(("x", 0), ub=2.0, cost=1.0)
        keyed.add_variable(("x", 1), ub=2.0, cost=3.0)
        keyed.add_le({("x", 0): 1.0, ("x", 1): 2.0}, 4.0)
        keyed.add_eq({("x", 0): 1.0, ("x", 1): -1.0}, 0.5)

        batched = LPBuilder("min")
        block = batched.add_variable_block("x", 2, ub=2.0, cost=[1.0, 3.0])
        batched.add_le_batch([0, 0], block.flat([0, 1]), [1.0, 2.0], [4.0])
        batched.add_eq_batch([0, 0], block.flat([0, 1]), [1.0, -1.0], [0.5])

        mk, mb = keyed.materialize(), batched.materialize()
        assert np.array_equal(mk.c, mb.c)
        assert np.array_equal(mk.bounds, mb.bounds)
        assert (mk.a_ub != mb.a_ub).nnz == 0
        assert np.array_equal(mk.b_ub, mb.b_ub)
        assert (mk.a_eq != mb.a_eq).nnz == 0
        assert np.array_equal(mk.b_eq, mb.b_eq)
