"""Tests for the sparse LP builder."""

import math

import pytest

from repro.exceptions import InfeasibleError, SolverError
from repro.flow import LPBuilder


class TestLPBuilder:
    def test_simple_minimization(self):
        lp = LPBuilder("min")
        lp.add_variable("x", lb=0, cost=1.0)
        lp.add_variable("y", lb=0, cost=2.0)
        lp.add_ge({"x": 1.0, "y": 1.0}, 4.0)
        sol = lp.solve()
        assert sol.objective == pytest.approx(4.0)
        assert sol["x"] == pytest.approx(4.0)
        assert sol["y"] == pytest.approx(0.0)

    def test_simple_maximization(self):
        lp = LPBuilder("max")
        lp.add_variable("x", lb=0, ub=3, cost=5.0)
        sol = lp.solve()
        assert sol.objective == pytest.approx(15.0)

    def test_equality_constraint(self):
        lp = LPBuilder("min")
        lp.add_variable("x", cost=1.0)
        lp.add_variable("y", cost=1.0)
        lp.add_eq({"x": 1.0, "y": 2.0}, 6.0)
        sol = lp.solve()
        assert sol["x"] + 2 * sol["y"] == pytest.approx(6.0)
        assert sol.objective == pytest.approx(3.0)  # all mass on y

    def test_le_constraint_binds(self):
        lp = LPBuilder("max")
        lp.add_variable("x", cost=1.0)
        lp.add_le({"x": 2.0}, 10.0)
        assert lp.solve()["x"] == pytest.approx(5.0)

    def test_infinite_rhs_skipped(self):
        lp = LPBuilder("max")
        lp.add_variable("x", ub=1.0, cost=1.0)
        lp.add_le({"x": 1.0}, math.inf)
        assert lp.num_constraints == 0
        assert lp.solve().objective == pytest.approx(1.0)

    def test_duplicate_variable_rejected(self):
        lp = LPBuilder()
        lp.add_variable("x")
        with pytest.raises(ValueError):
            lp.add_variable("x")

    def test_unknown_sense_rejected(self):
        with pytest.raises(ValueError):
            LPBuilder("maximize-ish")

    def test_infeasible_raises(self):
        lp = LPBuilder("min")
        lp.add_variable("x", lb=0, ub=1, cost=1.0)
        lp.add_ge({"x": 1.0}, 5.0)
        with pytest.raises(InfeasibleError):
            lp.solve()

    def test_empty_lp_raises(self):
        with pytest.raises(SolverError):
            LPBuilder().solve()

    def test_unbounded_raises_solver_error(self):
        lp = LPBuilder("max")
        lp.add_variable("x", cost=1.0)
        with pytest.raises(SolverError):
            lp.solve()

    def test_add_objective_terms_accumulates(self):
        lp = LPBuilder("max")
        lp.add_variable("x", ub=2.0)
        lp.add_objective_terms({"x": 1.0})
        lp.add_objective_terms({"x": 1.5})
        assert lp.solve().objective == pytest.approx(5.0)

    def test_tuple_keys(self):
        lp = LPBuilder("min")
        lp.add_variable(("f", "a", "b"), lb=1.0, cost=2.0)
        sol = lp.solve()
        assert sol[("f", "a", "b")] == pytest.approx(1.0)

    def test_solution_get_default(self):
        lp = LPBuilder("min")
        lp.add_variable("x", lb=0.5, cost=1.0)
        sol = lp.solve()
        assert sol.get("missing", 7.0) == 7.0

    def test_coefficients_on_same_key_accumulate_in_row(self):
        lp = LPBuilder("max")
        lp.add_variable("x", cost=1.0)
        # x + x <= 4  ->  x <= 2
        lp._ub_rows.append((lp._row({"x": 1.0}), 4.0))
        lp.add_le({"x": 2.0}, 4.0)
        assert lp.solve()["x"] == pytest.approx(2.0)
