"""Tests for min-cost splittable flow solvers."""

import networkx as nx
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.exceptions import InfeasibleError, InvalidProblemError
from repro.flow import Commodity, min_cost_multicommodity_flow, min_cost_single_source_flow


def capacitated_diamond() -> nx.DiGraph:
    g = nx.DiGraph()
    g.add_edge("s", "a", cost=1.0, capacity=5.0)
    g.add_edge("s", "b", cost=3.0, capacity=10.0)
    g.add_edge("a", "t", cost=1.0, capacity=5.0)
    g.add_edge("b", "t", cost=1.0, capacity=10.0)
    return g


class TestSingleSource:
    def test_prefers_cheap_path(self):
        flow, cost = min_cost_single_source_flow(capacitated_diamond(), "s", {"t": 4.0})
        assert cost == pytest.approx(8.0)
        assert flow[("s", "a")] == pytest.approx(4.0)
        assert ("s", "b") not in flow

    def test_splits_when_cheap_path_saturates(self):
        flow, cost = min_cost_single_source_flow(capacitated_diamond(), "s", {"t": 8.0})
        assert flow[("s", "a")] == pytest.approx(5.0)
        assert flow[("s", "b")] == pytest.approx(3.0)
        assert cost == pytest.approx(5 * 2 + 3 * 4)

    def test_multiple_sinks(self):
        g = capacitated_diamond()
        flow, cost = min_cost_single_source_flow(g, "s", {"a": 2.0, "t": 3.0})
        assert flow[("s", "a")] == pytest.approx(5.0)
        assert cost == pytest.approx(5 * 1 + 3 * 1)

    def test_infeasible_when_capacity_too_small(self):
        with pytest.raises(InfeasibleError):
            min_cost_single_source_flow(capacitated_diamond(), "s", {"t": 16.0})

    def test_zero_demand_returns_empty(self):
        flow, cost = min_cost_single_source_flow(capacitated_diamond(), "s", {"t": 0.0})
        assert flow == {}
        assert cost == 0.0

    def test_demand_at_source_is_free(self):
        flow, cost = min_cost_single_source_flow(capacitated_diamond(), "s", {"s": 3.0})
        assert flow == {}
        assert cost == 0.0

    def test_unknown_sink_rejected(self):
        with pytest.raises(InvalidProblemError):
            min_cost_single_source_flow(capacitated_diamond(), "s", {"zz": 1.0})

    def test_negative_demand_rejected(self):
        with pytest.raises(InvalidProblemError):
            min_cost_single_source_flow(capacitated_diamond(), "s", {"t": -1.0})

    def test_conservation_holds(self):
        g = capacitated_diamond()
        demands = {"t": 6.0, "b": 1.0}
        flow, _ = min_cost_single_source_flow(g, "s", demands)
        for node in g.nodes:
            out = sum(f for (u, v), f in flow.items() if u == node)
            inn = sum(f for (u, v), f in flow.items() if v == node)
            if node == "s":
                assert out - inn == pytest.approx(7.0)
            else:
                assert out - inn == pytest.approx(-demands.get(node, 0.0))

    @settings(max_examples=15, deadline=None)
    @given(st.integers(min_value=0, max_value=1000))
    def test_matches_networkx_min_cost_flow(self, seed):
        g = nx.gnp_random_graph(8, 0.5, seed=seed, directed=True)
        for u, v in g.edges:
            g.edges[u, v]["cost"] = float((u + 2 * v + seed) % 9 + 1)
            g.edges[u, v]["capacity"] = float((u * v + seed) % 4 + 2)
        if 0 not in g or 7 not in g:
            return
        demand = 3.0
        nxg = g.copy()
        nxg.nodes[0]["demand"] = -demand
        nxg.nodes[7]["demand"] = demand
        try:
            expected = nx.min_cost_flow_cost(nxg, weight="cost")
        except nx.NetworkXUnfeasible:
            with pytest.raises(InfeasibleError):
                min_cost_single_source_flow(g, 0, {7: demand})
            return
        _, cost = min_cost_single_source_flow(g, 0, {7: demand})
        assert cost == pytest.approx(expected)


class TestMulticommodity:
    def test_independent_commodities_match_single_source(self):
        g = capacitated_diamond()
        flows, cost = min_cost_multicommodity_flow(
            g, [Commodity("c1", "s", {"t": 4.0})]
        )
        _, expected = min_cost_single_source_flow(g, "s", {"t": 4.0})
        assert cost == pytest.approx(expected)
        assert flows["c1"][("s", "a")] == pytest.approx(4.0)

    def test_capacity_coupling_forces_split(self):
        g = nx.DiGraph()
        g.add_edge("s1", "m", cost=1.0, capacity=10.0)
        g.add_edge("s2", "m", cost=1.0, capacity=10.0)
        g.add_edge("m", "t", cost=1.0, capacity=3.0)
        g.add_edge("s1", "t", cost=10.0, capacity=10.0)
        g.add_edge("s2", "t", cost=10.0, capacity=10.0)
        flows, cost = min_cost_multicommodity_flow(
            g,
            [
                Commodity("a", "s1", {"t": 3.0}),
                Commodity("b", "s2", {"t": 2.0}),
            ],
        )
        # Only 3 units fit through m; the other 2 must pay the direct links.
        through_m = flows["a"].get(("m", "t"), 0) + flows["b"].get(("m", "t"), 0)
        assert through_m == pytest.approx(3.0)
        assert cost == pytest.approx(3 * 2 + 2 * 10)

    def test_infeasible_total_demand(self):
        g = nx.DiGraph()
        g.add_edge("s", "t", cost=1.0, capacity=1.0)
        with pytest.raises(InfeasibleError):
            min_cost_multicommodity_flow(
                g,
                [Commodity("a", "s", {"t": 1.0}), Commodity("b", "s", {"t": 1.0})],
            )

    def test_duplicate_names_rejected(self):
        g = capacitated_diamond()
        with pytest.raises(InvalidProblemError):
            min_cost_multicommodity_flow(
                g,
                [Commodity("a", "s", {"t": 1.0}), Commodity("a", "s", {"t": 1.0})],
            )

    def test_empty_commodity_list(self):
        flows, cost = min_cost_multicommodity_flow(capacitated_diamond(), [])
        assert flows == {}
        assert cost == 0.0

    def test_commodity_total_demand(self):
        c = Commodity("x", "s", {"a": 1.0, "b": 2.5})
        assert c.total_demand == pytest.approx(3.5)
