"""Tests for the successive-shortest-paths min-cost flow engine."""


import networkx as nx
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.exceptions import InfeasibleError, InvalidProblemError
from repro.flow import min_cost_flow_ssp, min_cost_single_source_flow


def capacitated_diamond() -> nx.DiGraph:
    g = nx.DiGraph()
    g.add_edge("s", "a", cost=1.0, capacity=5.0)
    g.add_edge("s", "b", cost=3.0, capacity=10.0)
    g.add_edge("a", "t", cost=1.0, capacity=5.0)
    g.add_edge("b", "t", cost=1.0, capacity=10.0)
    return g


class TestSSP:
    def test_prefers_cheap_path(self):
        flow, cost = min_cost_flow_ssp(capacitated_diamond(), "s", {"t": 4.0})
        assert cost == pytest.approx(8.0)
        assert flow[("s", "a")] == pytest.approx(4.0)

    def test_splits_when_saturated(self):
        flow, cost = min_cost_flow_ssp(capacitated_diamond(), "s", {"t": 8.0})
        assert flow[("s", "a")] == pytest.approx(5.0)
        assert flow[("s", "b")] == pytest.approx(3.0)
        assert cost == pytest.approx(5 * 2 + 3 * 4)

    def test_rerouting_via_backward_arcs(self):
        """Optimality requires undoing an earlier greedy augmentation."""
        g = nx.DiGraph()
        g.add_edge("s", "a", cost=1.0, capacity=1.0)
        g.add_edge("a", "t1", cost=0.0, capacity=1.0)
        g.add_edge("a", "t2", cost=0.0, capacity=1.0)
        g.add_edge("s", "t1", cost=3.0, capacity=1.0)
        flow, cost = min_cost_flow_ssp(g, "s", {"t1": 1.0, "t2": 1.0})
        # t2 is only reachable through a; t1 must take the expensive direct.
        assert flow[("a", "t2")] == pytest.approx(1.0)
        assert flow[("s", "t1")] == pytest.approx(1.0)
        assert cost == pytest.approx(1 + 3)

    def test_multiple_sinks(self):
        flow, cost = min_cost_flow_ssp(
            capacitated_diamond(), "s", {"a": 2.0, "t": 3.0}
        )
        _, lp_cost = min_cost_single_source_flow(
            capacitated_diamond(), "s", {"a": 2.0, "t": 3.0}
        )
        assert cost == pytest.approx(lp_cost)

    def test_zero_demand(self):
        flow, cost = min_cost_flow_ssp(capacitated_diamond(), "s", {"t": 0.0})
        assert flow == {}
        assert cost == 0.0

    def test_demand_at_source_free(self):
        flow, cost = min_cost_flow_ssp(capacitated_diamond(), "s", {"s": 2.0})
        assert cost == 0.0

    def test_infeasible(self):
        with pytest.raises(InfeasibleError):
            min_cost_flow_ssp(capacitated_diamond(), "s", {"t": 100.0})

    def test_unknown_nodes(self):
        with pytest.raises(InvalidProblemError):
            min_cost_flow_ssp(capacitated_diamond(), "zz", {"t": 1.0})
        with pytest.raises(InvalidProblemError):
            min_cost_flow_ssp(capacitated_diamond(), "s", {"zz": 1.0})

    def test_negative_demand_rejected(self):
        with pytest.raises(InvalidProblemError):
            min_cost_flow_ssp(capacitated_diamond(), "s", {"t": -1.0})

    def test_negative_cost_rejected(self):
        g = nx.DiGraph()
        g.add_edge("s", "t", cost=-1.0, capacity=1.0)
        with pytest.raises(InvalidProblemError):
            min_cost_flow_ssp(g, "s", {"t": 1.0})

    def test_anti_parallel_arcs(self):
        g = nx.DiGraph()
        g.add_edge("s", "t", cost=1.0, capacity=1.0)
        g.add_edge("t", "s", cost=1.0, capacity=1.0)
        g.add_edge("s", "m", cost=1.0, capacity=5.0)
        g.add_edge("m", "t", cost=1.0, capacity=5.0)
        flow, cost = min_cost_flow_ssp(g, "s", {"t": 3.0})
        assert cost == pytest.approx(1 * 1 + 2 * 2)

    @settings(max_examples=40, deadline=None)
    @given(
        st.integers(min_value=0, max_value=3000),
        st.integers(min_value=1, max_value=4),
    )
    def test_matches_lp_on_random_instances(self, seed, n_sinks):
        import random as _random

        rng = _random.Random(seed)
        g = nx.gnp_random_graph(10, 0.4, seed=seed, directed=True)
        for u, v in g.edges:
            g.edges[u, v]["cost"] = rng.uniform(0, 8)
            g.edges[u, v]["capacity"] = rng.uniform(1, 6)
        if 0 not in g:
            return
        sinks = sorted(nx.descendants(g, 0))[:n_sinks]
        if not sinks:
            return
        demands = {t: rng.uniform(0.2, 2.0) for t in sinks}
        try:
            _, lp_cost = min_cost_single_source_flow(g, 0, demands)
        except InfeasibleError:
            with pytest.raises(InfeasibleError):
                min_cost_flow_ssp(g, 0, demands)
            return
        flow, ssp_cost = min_cost_flow_ssp(g, 0, demands)
        assert ssp_cost == pytest.approx(lp_cost, rel=1e-6, abs=1e-6)
        # Capacity feasibility and conservation.
        for e, f in flow.items():
            assert f <= g.edges[e]["capacity"] + 1e-6
        for node in g.nodes:
            out = sum(f for (u, _v), f in flow.items() if u == node)
            inn = sum(f for (_u, v), f in flow.items() if v == node)
            if node == 0:
                expected = sum(demands.values()) - demands.get(0, 0.0)
            else:
                expected = -demands.get(node, 0.0)
            assert out - inn == pytest.approx(expected, abs=1e-6)
