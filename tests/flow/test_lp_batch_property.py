"""Property test: keyed and batched LP assembly produce identical solutions.

Random bounded LPs are generated feasible-by-construction (the rhs is set
from a random interior point), then assembled twice — once through the keyed
``add_variable``/``add_le``/``add_eq`` API and once through
``add_variable_block``/``add_le_batch``/``add_eq_batch`` — and solved.  Both
materialize bit-identical canonical matrices, so HiGHS must return
bit-identical ``LPSolution.values``.
"""

import numpy as np
import pytest

from repro.flow import LPBuilder

N_INSTANCES = 24


def _random_lp(rng: np.random.Generator):
    n = int(rng.integers(3, 9))
    ub = rng.uniform(1.0, 5.0, size=n)
    cost = rng.uniform(-2.0, 2.0, size=n)
    x0 = rng.uniform(0.0, 1.0, size=n) * ub  # interior point -> feasibility
    n_le = int(rng.integers(1, 5))
    n_eq = int(rng.integers(0, 3))
    le_rows = []
    for _ in range(n_le):
        coefs = np.where(rng.random(n) < 0.5, rng.uniform(-1.0, 2.0, size=n), 0.0)
        le_rows.append((coefs, float(coefs @ x0 + rng.uniform(0.1, 1.0))))
    eq_rows = []
    for _ in range(n_eq):
        coefs = np.where(rng.random(n) < 0.5, rng.uniform(-1.0, 2.0, size=n), 0.0)
        eq_rows.append((coefs, float(coefs @ x0)))
    return n, ub, cost, le_rows, eq_rows


def _build_keyed(sense, n, ub, cost, le_rows, eq_rows) -> LPBuilder:
    lp = LPBuilder(sense)
    for j in range(n):
        lp.add_variable(("v", j), lb=0.0, ub=float(ub[j]), cost=float(cost[j]))
    for coefs, rhs in le_rows:
        lp.add_le({("v", j): float(c) for j, c in enumerate(coefs)}, rhs)
    for coefs, rhs in eq_rows:
        lp.add_eq({("v", j): float(c) for j, c in enumerate(coefs)}, rhs)
    return lp


def _build_batched(sense, n, ub, cost, le_rows, eq_rows) -> LPBuilder:
    lp = LPBuilder(sense)
    block = lp.add_variable_block("v", n, lb=0.0, ub=ub, cost=cost)
    cols = block.indices()

    def emit(rows, add):
        if not rows:
            return
        row_idx = np.repeat(np.arange(len(rows)), n)
        col_idx = np.tile(cols, len(rows))
        data = np.concatenate([coefs for coefs, _ in rows])
        add(row_idx, col_idx, data, np.array([rhs for _, rhs in rows]))

    emit(le_rows, lp.add_le_batch)
    emit(eq_rows, lp.add_eq_batch)
    return lp


@pytest.mark.parametrize("seed", range(N_INSTANCES))
def test_keyed_and_batched_solutions_identical(seed):
    rng = np.random.default_rng(seed)
    n, ub, cost, le_rows, eq_rows = _random_lp(rng)
    sense = "min" if seed % 2 == 0 else "max"
    keyed = _build_keyed(sense, n, ub, cost, le_rows, eq_rows)
    batched = _build_batched(sense, n, ub, cost, le_rows, eq_rows)

    mk, mb = keyed.materialize(), batched.materialize()
    assert np.array_equal(mk.c, mb.c)
    assert np.array_equal(mk.bounds, mb.bounds)
    if mk.a_ub is not None:
        assert (mk.a_ub != mb.a_ub).nnz == 0
        assert np.array_equal(mk.b_ub, mb.b_ub)
    else:
        assert mb.a_ub is None
    if mk.a_eq is not None:
        assert (mk.a_eq != mb.a_eq).nnz == 0
        assert np.array_equal(mk.b_eq, mb.b_eq)
    else:
        assert mb.a_eq is None

    ks, bs = keyed.solve(), batched.solve()
    assert ks.objective == bs.objective
    assert ks.values == bs.values
