"""Hardened LP solve: fallback chain, rescale retry, SolveReport.

The acceptance scenario: monkeypatch ``linprog`` so the first method
crashes, and the chain must absorb it, succeed with the next method, and
record both attempts in the attached :class:`SolveReport`.
"""

import types

import pytest
from scipy.optimize import linprog as real_linprog

import repro.flow.lp as lp_module
from repro.exceptions import InfeasibleError, SolverError, UnboundedError
from repro.flow import DEFAULT_SOLVE_METHODS, LPBuilder


def simple_lp():
    lp = LPBuilder("min")
    lp.add_variable("x", lb=0, cost=1.0)
    lp.add_variable("y", lb=0, cost=2.0)
    lp.add_ge({"x": 1.0, "y": 1.0}, 4.0)
    return lp


def flaky_linprog(broken_methods, error=RuntimeError("HiGHS crashed")):
    """A linprog whose listed methods raise; others delegate to scipy."""
    calls = []

    def fake(c, *args, method="highs", **kwargs):
        calls.append(method)
        if method in broken_methods:
            raise error
        return real_linprog(c, *args, method=method, **kwargs)

    return fake, calls


class TestFallbackChain:
    def test_crash_in_first_method_is_absorbed(self, monkeypatch):
        fake, calls = flaky_linprog({"highs"})
        monkeypatch.setattr(lp_module, "linprog", fake)
        sol = simple_lp().solve()
        assert sol.objective == pytest.approx(4.0)
        assert calls == ["highs", "highs-ds"]
        report = sol.report
        assert report.succeeded
        assert report.method == "highs-ds"
        assert report.num_attempts == 2
        first, second = report.attempts
        assert (first.method, first.status) == ("highs", -1)
        assert "HiGHS crashed" in first.message
        assert (second.method, second.status) == ("highs-ds", 0)
        assert not report.rescaled

    def test_two_crashes_fall_through_to_ipm(self, monkeypatch):
        fake, calls = flaky_linprog({"highs", "highs-ds"})
        monkeypatch.setattr(lp_module, "linprog", fake)
        sol = simple_lp().solve()
        assert sol.objective == pytest.approx(4.0)
        assert calls == list(DEFAULT_SOLVE_METHODS)
        assert sol.report.method == "highs-ipm"
        assert [a.status for a in sol.report.attempts] == [-1, -1, 0]

    def test_all_methods_failing_raises_solver_error(self, monkeypatch):
        fake, calls = flaky_linprog(set(DEFAULT_SOLVE_METHODS))
        monkeypatch.setattr(lp_module, "linprog", fake)
        with pytest.raises(SolverError, match="6 attempts"):
            simple_lp().solve()
        # Whole chain, then the whole chain again on the rescaled LP.
        assert calls == list(DEFAULT_SOLVE_METHODS) * 2

    def test_rescale_retry_can_be_disabled(self, monkeypatch):
        fake, calls = flaky_linprog(set(DEFAULT_SOLVE_METHODS))
        monkeypatch.setattr(lp_module, "linprog", fake)
        with pytest.raises(SolverError, match="3 attempts"):
            simple_lp().solve(rescale_retry=False)
        assert calls == list(DEFAULT_SOLVE_METHODS)

    def test_nonterminal_status_moves_to_next_method(self, monkeypatch):
        def fake(c, *args, method="highs", **kwargs):
            if method == "highs":
                result = real_linprog(c, *args, method=method, **kwargs)
                return types.SimpleNamespace(
                    status=4, message="numerical difficulties", x=result.x, fun=result.fun
                )
            return real_linprog(c, *args, method=method, **kwargs)

        monkeypatch.setattr(lp_module, "linprog", fake)
        sol = simple_lp().solve()
        assert sol.report.method == "highs-ds"
        assert [a.status for a in sol.report.attempts] == [4, 0]


class TestRescaleRetry:
    def test_success_on_rescaled_lp_is_flagged(self, monkeypatch):
        seen = {"first_pass": 0}

        def fake(c, *args, method="highs", **kwargs):
            seen["first_pass"] += 1
            if seen["first_pass"] <= len(DEFAULT_SOLVE_METHODS):
                raise RuntimeError("bad scaling")
            return real_linprog(c, *args, method=method, **kwargs)

        monkeypatch.setattr(lp_module, "linprog", fake)
        sol = simple_lp().solve()
        assert sol.objective == pytest.approx(4.0)
        assert sol.report.rescaled
        assert sol.report.attempts[-1].rescaled
        assert all(not a.rescaled for a in sol.report.attempts[:3])

    def test_rescaling_preserves_the_optimum(self):
        # A badly row-scaled LP: same optimum before and after equilibration.
        lp = LPBuilder("min")
        lp.add_variable("x", lb=0, cost=1.0)
        lp.add_ge({"x": 1e8}, 3e8)
        plain = lp.solve(rescale_retry=False).objective
        rescaled = lp_module.LPBuilder._rescaled(lp.materialize())
        # Every row's largest coefficient is equilibrated to magnitude 1...
        assert abs(rescaled.a_ub).max() == pytest.approx(1.0)
        assert abs(rescaled.b_ub).max() == pytest.approx(3.0)
        # ...and the optimum is unchanged.
        assert plain == pytest.approx(3.0)


class TestTerminalVerdicts:
    def test_infeasible_does_not_trigger_fallback(self, monkeypatch):
        fake, calls = flaky_linprog(set())
        monkeypatch.setattr(lp_module, "linprog", fake)
        lp = LPBuilder("min")
        lp.add_variable("x", lb=0, ub=1, cost=1.0)
        lp.add_ge({"x": 1.0}, 5.0)
        with pytest.raises(InfeasibleError):
            lp.solve()
        assert calls == ["highs"]

    def test_unbounded_does_not_trigger_fallback(self, monkeypatch):
        fake, calls = flaky_linprog(set())
        monkeypatch.setattr(lp_module, "linprog", fake)
        lp = LPBuilder("max")
        lp.add_variable("x", lb=0, cost=1.0)
        with pytest.raises(UnboundedError):
            lp.solve()
        assert calls == ["highs"]


class TestOptions:
    def test_time_limit_passed_to_every_attempt(self, monkeypatch):
        seen = []

        def fake(c, *args, method="highs", options=None, **kwargs):
            seen.append((method, dict(options or {})))
            raise RuntimeError("boom")

        monkeypatch.setattr(lp_module, "linprog", fake)
        with pytest.raises(SolverError):
            simple_lp().solve(time_limit=0.25, rescale_retry=False)
        assert seen == [(m, {"time_limit": 0.25}) for m in DEFAULT_SOLVE_METHODS]

    def test_custom_methods_respected(self, monkeypatch):
        fake, calls = flaky_linprog(set())
        monkeypatch.setattr(lp_module, "linprog", fake)
        sol = simple_lp().solve(methods=["highs-ipm"])
        assert calls == ["highs-ipm"]
        assert sol.report.method == "highs-ipm"

    def test_empty_methods_rejected(self):
        with pytest.raises(SolverError, match="no solve methods"):
            simple_lp().solve(methods=[])

    def test_default_solve_attaches_report(self):
        sol = simple_lp().solve()
        assert sol.report is not None
        assert sol.report.succeeded
        assert sol.report.method == "highs"
        assert sol.report.seconds >= 0.0
