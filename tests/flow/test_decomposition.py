"""Tests for flow -> path decomposition."""

import networkx as nx
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.exceptions import DecompositionError
from repro.flow import (
    decompose_single_source_flow,
    min_cost_single_source_flow,
)
from repro.flow.decomposition import split_among_commodities, split_with_removal_quotas


class TestDecomposition:
    def test_single_path(self):
        flow = {("s", "a"): 2.0, ("a", "t"): 2.0}
        paths = decompose_single_source_flow(flow, "s", {"t": 2.0})
        assert len(paths["t"]) == 1
        assert paths["t"][0].path == ("s", "a", "t")
        assert paths["t"][0].amount == pytest.approx(2.0)

    def test_split_flow_two_paths(self):
        flow = {
            ("s", "a"): 1.0,
            ("a", "t"): 1.0,
            ("s", "b"): 2.0,
            ("b", "t"): 2.0,
        }
        paths = decompose_single_source_flow(flow, "s", {"t": 3.0})
        assert sum(p.amount for p in paths["t"]) == pytest.approx(3.0)
        assert {p.path for p in paths["t"]} == {("s", "a", "t"), ("s", "b", "t")}

    def test_multiple_sinks_share_edges(self):
        flow = {("s", "a"): 3.0, ("a", "t1"): 1.0, ("a", "t2"): 2.0}
        paths = decompose_single_source_flow(flow, "s", {"t1": 1.0, "t2": 2.0})
        assert paths["t1"][0].path == ("s", "a", "t1")
        assert paths["t2"][0].path == ("s", "a", "t2")

    def test_sink_equals_source(self):
        paths = decompose_single_source_flow({}, "s", {"s": 5.0})
        assert paths["s"][0].path == ("s",)
        assert paths["s"][0].amount == pytest.approx(5.0)

    def test_cycle_is_canceled(self):
        # A 2-cycle a<->b carrying junk flow on top of a real path.
        flow = {
            ("s", "a"): 1.0,
            ("a", "t"): 1.0,
            ("a", "b"): 0.5,
            ("b", "a"): 0.5,
        }
        paths = decompose_single_source_flow(flow, "s", {"t": 1.0})
        assert paths["t"][0].path == ("s", "a", "t")

    def test_insufficient_flow_raises(self):
        flow = {("s", "a"): 1.0, ("a", "t"): 1.0}
        with pytest.raises(DecompositionError):
            decompose_single_source_flow(flow, "s", {"t": 2.0})

    def test_pathflow_accessors(self):
        flow = {("s", "t"): 1.0}
        pf = decompose_single_source_flow(flow, "s", {"t": 1.0})["t"][0]
        assert pf.source == "s"
        assert pf.sink == "t"
        assert pf.edges() == [("s", "t")]

    def test_zero_demand_sink_gets_no_paths(self):
        flow = {("s", "t"): 1.0}
        paths = decompose_single_source_flow(flow, "s", {"t": 1.0, "x": 0.0})
        assert paths["x"] == []

    @settings(max_examples=20, deadline=None)
    @given(st.integers(min_value=0, max_value=500))
    def test_reassembles_lp_flow(self, seed):
        """Decomposition of an LP min-cost flow covers demands and respects loads."""
        g = nx.gnp_random_graph(9, 0.4, seed=seed, directed=True)
        for u, v in g.edges:
            g.edges[u, v]["cost"] = float((3 * u + v + seed) % 7 + 1)
            g.edges[u, v]["capacity"] = 10.0
        sinks = [n for n in g.nodes if n != 0][:3]
        if 0 not in g or not sinks:
            return
        demands = {t: 1.0 + (t % 3) for t in sinks}
        try:
            flow, _ = min_cost_single_source_flow(g, 0, demands)
        except Exception:
            return
        paths = decompose_single_source_flow(flow, 0, demands)
        # Demands covered exactly.
        for t, d in demands.items():
            assert sum(p.amount for p in paths[t]) == pytest.approx(d)
        # Per-edge usage never exceeds the original flow.
        usage: dict = {}
        for pfs in paths.values():
            for pf in pfs:
                for e in pf.edges():
                    usage[e] = usage.get(e, 0.0) + pf.amount
        for e, used in usage.items():
            assert used <= flow[e] + 1e-6


class TestSplitAmongCommodities:
    def test_exact_split(self):
        flow = {("s", "t"): 3.0}
        paths = decompose_single_source_flow(flow, "s", {"t": 3.0})
        split = split_among_commodities(
            paths, [("c1", "t", 1.0), ("c2", "t", 2.0)]
        )
        assert sum(p.amount for p in split["c1"]) == pytest.approx(1.0)
        assert sum(p.amount for p in split["c2"]) == pytest.approx(2.0)

    def test_shortfall_raises(self):
        flow = {("s", "t"): 1.0}
        paths = decompose_single_source_flow(flow, "s", {"t": 1.0})
        with pytest.raises(DecompositionError):
            split_among_commodities(paths, [("c1", "t", 5.0)])

    def test_quota_aware_split_steers_expensive_slices(self):
        """The commodity with the removal quota gets the expensive path."""
        flow = {
            ("s", "a"): 2.0,
            ("a", "t"): 2.0,
            ("s", "t"): 2.0,  # expensive direct link
        }
        costs = {("s", "a"): 1.0, ("a", "t"): 1.0, ("s", "t"): 50.0}
        paths = decompose_single_source_flow(flow, "s", {"t": 4.0})
        split = split_with_removal_quotas(
            paths,
            [("trimmer", "t", 2.0, 2.0), ("keeper", "t", 2.0, 0.0)],
            costs=costs,
        )
        trimmer_paths = {pf.path for pf in split["trimmer"]}
        keeper_paths = {pf.path for pf in split["keeper"]}
        assert ("s", "t") in trimmer_paths  # expensive slice -> full quota
        assert keeper_paths == {("s", "a", "t")}

    def test_quota_split_demands_covered(self):
        flow = {("s", "t"): 5.0}
        paths = decompose_single_source_flow(flow, "s", {"t": 5.0})
        split = split_with_removal_quotas(
            paths,
            [("a", "t", 2.0, 0.5), ("b", "t", 3.0, 1.0)],
            costs={("s", "t"): 1.0},
        )
        assert sum(pf.amount for pf in split["a"]) == pytest.approx(2.0)
        assert sum(pf.amount for pf in split["b"]) == pytest.approx(3.0)

    def test_quota_split_without_costs_falls_back(self):
        flow = {("s", "t"): 3.0}
        paths = decompose_single_source_flow(flow, "s", {"t": 3.0})
        split = split_with_removal_quotas(
            paths, [("a", "t", 1.0, 0.2), ("b", "t", 2.0, 0.4)]
        )
        assert sum(pf.amount for pf in split["a"]) == pytest.approx(1.0)

    def test_quota_split_shortfall_raises(self):
        flow = {("s", "t"): 1.0}
        paths = decompose_single_source_flow(flow, "s", {"t": 1.0})
        with pytest.raises(DecompositionError):
            split_with_removal_quotas(
                paths, [("a", "t", 5.0, 1.0)], costs={("s", "t"): 1.0}
            )

    def test_commodity_spanning_multiple_paths(self):
        flow = {
            ("s", "a"): 1.0,
            ("a", "t"): 1.0,
            ("s", "b"): 1.0,
            ("b", "t"): 1.0,
        }
        paths = decompose_single_source_flow(flow, "s", {"t": 2.0})
        split = split_among_commodities(paths, [("c1", "t", 1.5), ("c2", "t", 0.5)])
        assert sum(p.amount for p in split["c1"]) == pytest.approx(1.5)
        assert len(split["c1"]) == 2
