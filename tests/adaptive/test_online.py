"""The single-stream online comparison driver."""

import numpy as np
import pytest

from repro.adaptive import (
    ALL_POLICIES,
    build_reactive_tables,
    placement_type_costs,
    replay_reactive,
    run_online_adaptive,
)
from repro.core import Placement, algorithm1, routing_cost
from repro.exceptions import InvalidProblemError

from tests.core.conftest import make_line_problem


@pytest.fixture(scope="module")
def problem():
    return make_line_problem(
        num_nodes=6,
        catalog_size=4,
        cache_nodes={2: 1, 3: 2},
        demand={
            ("item0", 5): 5.0,
            ("item1", 5): 2.0,
            ("item2", 5): 1.0,
            ("item3", 4): 1.0,
        },
    )


@pytest.fixture(scope="module")
def reactive_tables(problem):
    return build_reactive_tables(problem)


@pytest.fixture(scope="module")
def report(problem, reactive_tables):
    return run_online_adaptive(
        problem,
        n_requests=4000,
        chunk_size=256,
        seed=7,
        replan_every=4,
        reactive=reactive_tables,
    )


class TestReport:
    def test_all_policies_present(self, report):
        assert set(report.traces) == set(ALL_POLICIES)
        for trace in report.traces.values():
            assert len(trace.chunk_costs) == len(report.chunk_requests)
            assert np.isfinite(trace.chunk_costs).all()
            assert trace.cost_rate > 0

    def test_chunk_requests_cover_stream(self, report):
        assert int(report.chunk_requests.sum()) == report.n_requests
        assert report.n_requests == 4000

    def test_static_is_time_invariant(self, report):
        static = report.traces["static_alg1"]
        # Same placement all along: per-chunk cost varies only with the
        # request mix, and the per-request average stays in a narrow band.
        per_req = static.chunk_costs / report.chunk_requests
        assert per_req.std() / per_req.mean() < 0.5

    def test_regret_of_base_is_zero(self, report):
        assert np.allclose(report.regret("static_alg1"), 0.0)

    def test_regret_shape_and_cumulative(self, report):
        regret = report.regret("lce")
        assert regret.shape == report.traces["lce"].chunk_costs.shape
        expected = (
            report.traces["lce"].cumulative()
            - report.traces["static_alg1"].cumulative()
        )
        assert np.allclose(regret, expected)

    def test_adaptive_policies_update(self, report):
        assert report.traces["adaptive_gradient"].updates > 0
        assert report.traces["periodic_alg1_gpr"].updates > 0
        assert report.traces["static_alg1"].updates == 0

    def test_reactive_traces_match_standalone_replay(
        self, problem, reactive_tables, report
    ):
        standalone = replay_reactive(
            problem,
            strategy="lce",
            n_requests=4000,
            chunk_size=256,
            seed=7,
            reactive=reactive_tables,
        )
        trace = report.traces["lce"]
        assert trace.cost_rate == pytest.approx(standalone.cost_rate)
        assert np.allclose(trace.chunk_costs, standalone.chunk_costs)

    def test_static_cost_rate_matches_routing_cost(
        self, problem, reactive_tables, report
    ):
        # Scoring the static placement against the empirical stream must
        # approach the analytic routing cost of the same solution.
        result = algorithm1(problem)
        analytic = routing_cost(problem, result.solution.routing)
        assert report.traces["static_alg1"].cost_rate == pytest.approx(
            analytic, rel=0.1
        )

    def test_determinism(self, problem, reactive_tables, report):
        again = run_online_adaptive(
            problem,
            n_requests=4000,
            chunk_size=256,
            seed=7,
            replan_every=4,
            reactive=reactive_tables,
        )
        for name in ALL_POLICIES:
            assert np.allclose(
                again.traces[name].chunk_costs,
                report.traces[name].chunk_costs,
            )


class TestValidation:
    def test_unknown_policy_rejected(self, problem):
        with pytest.raises(InvalidProblemError):
            run_online_adaptive(problem, policies=("lce", "nope"))

    def test_bad_sizes_rejected(self, problem):
        with pytest.raises(InvalidProblemError):
            run_online_adaptive(problem, n_requests=0)
        with pytest.raises(InvalidProblemError):
            run_online_adaptive(problem, chunk_size=0)
        with pytest.raises(InvalidProblemError):
            run_online_adaptive(problem, replan_every=0)


class TestPlacementTypeCosts:
    def test_empty_placement_pays_origin_paths(self, problem, reactive_tables):
        rt = reactive_tables
        costs = placement_type_costs(rt, Placement())
        # Each type pays at least its shortest-path cost to the pinned
        # origin, scaled by its rate.
        assert (costs > 0).all()

    def test_full_local_replicas_cost_little(self, problem, reactive_tables):
        rt = reactive_tables
        empty = placement_type_costs(rt, Placement())
        # Cache item0 right next to the requester at node 3.
        cached = placement_type_costs(rt, Placement.from_set([(3, "item0")]))
        t = list(rt.tables.types).index(("item0", 5))
        assert cached[t] < empty[t]
