"""Tests for the array-backed chunked LRU/LFU cache state."""

import numpy as np
import pytest

from repro.adaptive.state import CacheArrayState
from repro.baselines.reactive import EvictingCache
from repro.exceptions import InvalidProblemError


def _chunk(state, events, chunk_len=None):
    """Apply ``events`` = list of ("touch"|"insert", node, item) in order."""
    touches = [(n, i, k) for k, (kind, n, i) in enumerate(events) if kind == "touch"]
    inserts = [(n, i, k) for k, (kind, n, i) in enumerate(events) if kind == "insert"]
    tn, ti, ts = (np.array(x, dtype=np.int64) for x in zip(*touches)) if touches else (
        np.zeros(0, np.int64),
    ) * 3
    inn, ini, ins = (np.array(x, dtype=np.int64) for x in zip(*inserts)) if inserts else (
        np.zeros(0, np.int64),
    ) * 3
    state.apply_chunk(tn, ti, ts, inn, ini, ins, chunk_len or len(events))


class TestCacheArrayState:
    def test_insert_and_residency(self):
        st = CacheArrayState(np.array([2.0]), np.ones(4))
        _chunk(st, [("insert", 0, 1), ("insert", 0, 2)])
        assert set(st.items_at(0)) == {1, 2}
        assert st.used[0] == pytest.approx(2.0)

    def test_lru_eviction_order(self):
        st = CacheArrayState(np.array([2.0]), np.ones(4), "lru")
        _chunk(st, [("insert", 0, 0), ("insert", 0, 1)])
        _chunk(st, [("touch", 0, 0)])  # 0 becomes MRU
        _chunk(st, [("insert", 0, 2)])
        assert set(st.items_at(0)) == {0, 2}

    def test_lfu_eviction_prefers_low_frequency(self):
        st = CacheArrayState(np.array([2.0]), np.ones(4), "lfu")
        _chunk(st, [("insert", 0, 0), ("touch", 0, 0), ("touch", 0, 0)])
        _chunk(st, [("insert", 0, 1)])
        _chunk(st, [("insert", 0, 2)])
        assert 0 in st.items_at(0)  # 3 events survive
        assert 1 not in st.items_at(0)

    def test_fresh_insert_not_its_own_victim(self):
        st = CacheArrayState(np.array([2.0]), np.ones(4), "lru")
        _chunk(st, [("insert", 0, 0), ("insert", 0, 1)])
        _chunk(st, [("insert", 0, 3)])
        # The fresh item 3 must displace a stale item, not itself.
        assert 3 in st.items_at(0)
        assert len(st.items_at(0)) == 2

    def test_oversized_item_rejected(self):
        st = CacheArrayState(np.array([1.0]), np.array([1.0, 5.0]))
        _chunk(st, [("insert", 0, 1)])
        assert len(st.items_at(0)) == 0
        assert st.used[0] == 0.0

    def test_heterogeneous_sizes_evict_until_fit(self):
        st = CacheArrayState(np.array([4.0]), np.array([2.0, 2.0, 3.0]))
        _chunk(st, [("insert", 0, 0), ("insert", 0, 1)])
        _chunk(st, [("insert", 0, 2)])  # needs 3: evicts both stale items
        assert 2 in st.items_at(0)
        assert st.used[0] <= 4.0 + 1e-9

    def test_invalid_policy(self):
        with pytest.raises(InvalidProblemError):
            CacheArrayState(np.ones(1), np.ones(1), "fifo")

    def test_clock_advances_by_chunk_length(self):
        st = CacheArrayState(np.array([2.0]), np.ones(2))
        _chunk(st, [("insert", 0, 0)], chunk_len=10)
        assert st.clock == 10

    @pytest.mark.parametrize("policy", ["lru", "lfu"])
    def test_chunk1_matches_evicting_cache(self, policy):
        """Random per-event chunks replicate the dict-based cache exactly."""
        rng = np.random.default_rng(42)
        sizes = np.array([1.0, 1.0, 2.0, 1.0, 1.0])
        st = CacheArrayState(np.array([3.0]), sizes, policy)
        ref = EvictingCache(3.0, policy)
        for _ in range(400):
            item = int(rng.integers(5))
            if item in {int(i) for i in st.items_at(0)}:
                _chunk(st, [("touch", 0, item)], chunk_len=1)
                ref.touch(item)
            else:
                _chunk(st, [("insert", 0, item)], chunk_len=1)
                ref.insert(item, float(sizes[item]))
            assert {int(i) for i in st.items_at(0)} == set(ref.items())
            assert st.used[0] == pytest.approx(ref.used)


class TestFailureHooks:
    """PR 8: cache wipes and dead-node skipping for degraded replays."""

    def test_wipe_nodes_clears_all_state(self):
        st = CacheArrayState(np.array([3.0, 3.0]), np.ones(4))
        _chunk(st, [("insert", 0, 1), ("insert", 1, 2), ("touch", 1, 2)])
        st.wipe_nodes([1])
        assert set(st.items_at(0)) == {1}
        assert len(st.items_at(1)) == 0
        assert st.used[1] == 0.0
        assert (st.freq[1] == 0).all()
        assert (st.last_used[1] == 0).all()

    def test_wipe_empty_is_noop(self):
        st = CacheArrayState(np.array([2.0]), np.ones(2))
        _chunk(st, [("insert", 0, 0)])
        st.wipe_nodes(np.zeros(0, dtype=np.int64))
        assert set(st.items_at(0)) == {0}

    def test_set_down_wipes_on_entry_and_skips_while_down(self):
        st = CacheArrayState(np.array([3.0, 3.0]), np.ones(4))
        _chunk(st, [("insert", 0, 1), ("insert", 1, 2)])
        st.set_down([1])
        assert len(st.items_at(1)) == 0
        # Dead node ignores inserts and touches; live node keeps working.
        _chunk(st, [("insert", 1, 3), ("touch", 1, 2), ("insert", 0, 2)])
        assert len(st.items_at(1)) == 0
        assert set(st.items_at(0)) == {1, 2}

    def test_repaired_node_comes_back_empty_and_working(self):
        st = CacheArrayState(np.array([2.0]), np.ones(3))
        _chunk(st, [("insert", 0, 0)])
        st.set_down([0])
        st.set_down([])  # repair
        assert len(st.items_at(0)) == 0
        _chunk(st, [("insert", 0, 1)])
        assert set(st.items_at(0)) == {1}

    def test_repeated_set_down_does_not_rewipe(self):
        st = CacheArrayState(np.array([2.0, 2.0]), np.ones(3))
        st.set_down([1])
        _chunk(st, [("insert", 0, 0)])
        st.set_down([1])  # same set again: node 0 state must survive
        assert set(st.items_at(0)) == {0}

    def test_healthy_path_is_bit_identical(self):
        """With no down nodes the failure hooks must not perturb replays."""
        rng = np.random.default_rng(0)
        events = [
            ("insert" if rng.random() < 0.5 else "touch",
             int(rng.integers(2)), int(rng.integers(4)))
            for _ in range(100)
        ]
        a = CacheArrayState(np.array([2.0, 3.0]), np.ones(4))
        b = CacheArrayState(np.array([2.0, 3.0]), np.ones(4))
        b.set_down([0]); b.set_down([])  # exercised hooks, then healthy
        _chunk(a, events)
        _chunk(b, events)
        assert np.array_equal(a.resident, b.resident)
        assert np.array_equal(a.last_used, b.last_used)
        assert np.array_equal(a.freq, b.freq)
        assert np.array_equal(a.used, b.used)
