"""LP-template Algorithm 1 re-optimization + GPR prediction loop."""

import numpy as np
import pytest

from repro.adaptive import (
    Algorithm1Template,
    PlannerConfig,
    PredictivePlanner,
    build_reactive_tables,
)
from repro.core import algorithm1, routing_cost
from repro.exceptions import InvalidProblemError

from tests.core.conftest import make_line_problem


@pytest.fixture(scope="module")
def problem():
    return make_line_problem(
        num_nodes=6,
        catalog_size=4,
        cache_nodes={2: 1, 3: 2},
        demand={
            ("item0", 5): 5.0,
            ("item1", 5): 2.0,
            ("item2", 5): 1.0,
            ("item3", 4): 1.0,
        },
    )


@pytest.fixture(scope="module")
def template(problem):
    return Algorithm1Template(problem)


class TestAlgorithm1Template:
    def test_unpatched_solve_matches_algorithm1(self, problem, template):
        direct = algorithm1(problem)
        templated = template.solve()
        assert templated.lp_objective == pytest.approx(direct.lp_objective)
        assert templated.solution.placement.as_set() == (
            direct.solution.placement.as_set()
        )
        assert routing_cost(problem, templated.solution.routing) == pytest.approx(
            routing_cost(problem, direct.solution.routing)
        )

    def test_patched_solve_matches_fresh_solver(self, problem, template):
        scaled = {key: 3.0 * rate for key, rate in problem.demand.items()}
        swapped = problem.with_demand(scaled)
        direct = algorithm1(swapped)
        templated = template.solve(scaled)
        assert templated.lp_objective == pytest.approx(direct.lp_objective)
        assert templated.solution.placement.as_set() == (
            direct.solution.placement.as_set()
        )
        assert routing_cost(swapped, templated.solution.routing) == pytest.approx(
            routing_cost(swapped, direct.solution.routing)
        )

    def test_skewed_demand_shifts_placement(self, problem, template):
        # All the weight on item2: caches should favor it.
        skew = {key: (50.0 if key[0] == "item2" else 1e-3) for key in problem.demand}
        result = template.solve(skew)
        cached_items = {item for _node, item in result.solution.placement.as_set()}
        assert "item2" in cached_items

    def test_template_reusable(self, problem, template):
        first = template.solve()
        template.solve({key: 2.0 for key in problem.demand})
        again = template.solve()
        assert again.lp_objective == pytest.approx(first.lp_objective)
        assert again.solution.placement.as_set() == (
            first.solution.placement.as_set()
        )

    def test_wrong_support_rejected(self, problem, template):
        with pytest.raises(InvalidProblemError):
            template.solve({("item0", 5): 1.0})
        extra = dict(problem.demand)
        extra[("item0", 4)] = 1.0
        with pytest.raises(InvalidProblemError):
            template.solve(extra)

    def test_nonpositive_rates_floored(self, problem, template):
        zeroed = {key: 0.0 for key in problem.demand}
        result = template.solve(zeroed)
        assert np.isfinite(result.lp_objective)


class TestPredictivePlanner:
    def test_forecast_before_observations_uses_instance_rates(self, problem):
        rt = build_reactive_tables(problem)
        planner = PredictivePlanner(rt)
        assert np.allclose(planner.forecast(), rt.tables.rates)

    def test_mean_forecast_below_min_history(self, problem):
        rt = build_reactive_tables(problem)
        planner = PredictivePlanner(rt, PlannerConfig(min_history=10))
        counts = np.array([10.0, 4.0, 2.0, 2.0])
        planner.observe(counts, elapsed=2.0)
        planner.observe(3 * counts, elapsed=2.0)
        assert np.allclose(planner.forecast(), 2 * counts / 2.0)

    def test_gpr_forecast_tracks_trend(self, problem):
        rt = build_reactive_tables(problem)
        planner = PredictivePlanner(
            rt, PlannerConfig(min_history=4, max_gpr_types=rt.num_types)
        )
        # Rising rate on type 0, flat elsewhere.
        for k in range(8):
            counts = np.array([10.0 + 5.0 * k, 4.0, 2.0, 2.0])
            planner.observe(counts, elapsed=1.0)
        predicted = planner.forecast()
        mean_rate = np.mean([10.0 + 5.0 * k for k in range(8)])
        # The GPR extrapolates the ramp beyond the empirical mean.
        assert predicted[0] > mean_rate
        assert predicted[1] == pytest.approx(4.0, rel=0.3)

    def test_replan_returns_result_and_counts(self, problem):
        rt = build_reactive_tables(problem)
        planner = PredictivePlanner(rt, PlannerConfig(min_history=2))
        planner.observe(np.array([10.0, 4.0, 2.0, 2.0]), elapsed=1.0)
        result = planner.replan()
        assert planner.current is result
        assert planner.replans == 1
        assert result.solution.placement is not None
        assert np.isfinite(result.lp_objective)

    def test_history_window_rolls(self, problem):
        rt = build_reactive_tables(problem)
        planner = PredictivePlanner(
            rt, PlannerConfig(history_window=3, min_history=100)
        )
        for k in range(10):
            planner.observe(np.full(rt.num_types, float(k + 1)), elapsed=1.0)
        # Only the last 3 chunks (8, 9, 10) survive in the mean.
        assert np.allclose(planner.forecast(), 9.0)

    def test_invalid_config_rejected(self, problem):
        rt = build_reactive_tables(problem)
        with pytest.raises(InvalidProblemError):
            PredictivePlanner(rt, PlannerConfig(history_window=1))
        planner = PredictivePlanner(rt)
        with pytest.raises(InvalidProblemError):
            planner.observe(np.ones(rt.num_types), elapsed=0.0)
