"""Projected-gradient adaptive placement: projection, gradients, convergence."""

import numpy as np
import pytest

from repro.adaptive import (
    AdaptiveGradientPlacement,
    GradientConfig,
    build_reactive_tables,
    project_box_capacity,
    run_online_adaptive,
)
from repro.core import ProblemInstance, pin_full_catalog
from repro.exceptions import InvalidProblemError
from repro.graph import line_topology
from repro.workload.zipf import zipf_demand

from tests.core.conftest import make_line_problem


class TestProjection:
    def test_noop_when_feasible(self):
        z = np.array([0.2, 0.3, 0.1])
        y = project_box_capacity(z, np.ones(3), 2.0)
        assert np.allclose(y, z)

    def test_clips_box_violations(self):
        z = np.array([-0.5, 1.7])
        y = project_box_capacity(z, np.ones(2), 5.0)
        assert np.allclose(y, [0.0, 1.0])

    def test_capacity_binds(self):
        z = np.array([1.0, 1.0, 1.0, 1.0])
        y = project_box_capacity(z, np.ones(4), 2.0)
        assert float(y.sum()) == pytest.approx(2.0, abs=1e-6)
        assert (y >= 0).all() and (y <= 1).all()

    def test_weighted_capacity(self):
        sizes = np.array([1.0, 3.0])
        y = project_box_capacity(np.array([1.0, 1.0]), sizes, 2.0)
        assert float(sizes @ y) == pytest.approx(2.0, abs=1e-6)
        # Equal pull, but the larger item is penalized harder (tau * b_i).
        assert y[0] > y[1]

    def test_matches_bruteforce_qp(self):
        rng = np.random.default_rng(0)
        for _ in range(10):
            z = rng.normal(0.5, 0.8, size=5)
            sizes = rng.uniform(0.5, 2.0, size=5)
            cap = rng.uniform(1.0, 4.0)
            y = project_box_capacity(z, sizes, cap)
            # KKT: y solves min ||y - z||^2 -> compare against a fine grid of
            # dual values tau >= 0.
            best = None
            for tau in np.linspace(0, 10, 20001):
                cand = np.clip(z - tau * sizes, 0.0, 1.0)
                if sizes @ cand <= cap + 1e-9:
                    d = float(((cand - z) ** 2).sum())
                    if best is None or d < best[0]:
                        best = (d, cand)
            assert np.allclose(y, best[1], atol=1e-3)

    def test_negative_capacity_rejected(self):
        with pytest.raises(InvalidProblemError):
            project_box_capacity(np.ones(2), np.ones(2), -1.0)


@pytest.fixture(scope="module")
def grad_setup():
    problem = make_line_problem(
        num_nodes=6,
        catalog_size=4,
        cache_nodes={2: 1, 3: 2},
        demand={
            ("item0", 5): 5.0,
            ("item1", 5): 2.0,
            ("item2", 5): 1.0,
            ("item3", 4): 1.0,
        },
    )
    return problem, build_reactive_tables(problem)


class TestSubgradient:
    def test_matches_finite_differences(self, grad_setup):
        _problem, rt = grad_setup
        grad_state = AdaptiveGradientPlacement(rt)
        rng = np.random.default_rng(1)
        # Random interior feasible-ish state on cache rows.
        for v in np.flatnonzero(rt.capacities > 0):
            grad_state.y[v] = rng.uniform(0.05, 0.3, size=len(rt.items))
        rates = rt.tables.rates
        analytic = grad_state._subgradient(rates)
        eps = 1e-6
        for v in np.flatnonzero(rt.capacities > 0):
            for i in range(len(rt.items)):
                base = grad_state.expected_cost_rate(rates)
                grad_state.y[v, i] += eps
                bumped = grad_state.expected_cost_rate(rates)
                grad_state.y[v, i] -= eps
                fd = -(bumped - base) / eps  # saving = -cost
                assert analytic[v, i] == pytest.approx(fd, rel=1e-3, abs=1e-6)

    def test_gradient_zero_off_cache_rows(self, grad_setup):
        _problem, rt = grad_setup
        grad_state = AdaptiveGradientPlacement(rt)
        g = grad_state._subgradient(rt.tables.rates)
        off = rt.capacities == 0
        assert np.allclose(g[off], 0.0)

    def test_observe_respects_capacity(self, grad_setup):
        _problem, rt = grad_setup
        grad_state = AdaptiveGradientPlacement(
            rt, GradientConfig(gamma0=5.0, power=0.6, round_every=3)
        )
        counts = np.ones(rt.num_types) * 50
        for _ in range(5):
            grad_state.observe(counts, elapsed=1.0)
        for v in np.flatnonzero(rt.capacities > 0):
            load = float(rt.item_size @ grad_state.y[v])
            assert load <= rt.capacities[v] + 1e-6
        placement = grad_state.placement()
        for v in np.flatnonzero(rt.capacities > 0):
            used = placement.used_capacity(rt.nodes[v], rt.problem)
            assert used <= rt.capacities[v] + 1e-9

    def test_bad_config_rejected(self, grad_setup):
        _problem, rt = grad_setup
        with pytest.raises(InvalidProblemError):
            AdaptiveGradientPlacement(rt, GradientConfig(gamma0=0.0))
        with pytest.raises(InvalidProblemError):
            AdaptiveGradientPlacement(rt, GradientConfig(power=1.5))


class TestConvergence:
    def test_within_ten_percent_of_static_alg1_on_stationary_zipf(self):
        """Acceptance criterion: the adaptive gradient converges to within
        10% of the static Algorithm-1 cost on a stationary Zipf stream."""
        net = line_topology(8)
        for v in (3, 5, 6):
            net.set_cache_capacity(v, 3)
        catalog = tuple(f"item{k:02d}" for k in range(15))
        demand = zipf_demand(
            catalog, [7], total_rate=40.0, alpha=0.9,
            rng=np.random.default_rng(2),
        )
        problem = ProblemInstance(
            network=net, catalog=catalog, demand=demand,
            pinned=pin_full_catalog(catalog, [0]),
        )
        report = run_online_adaptive(
            problem,
            n_requests=40_000,
            chunk_size=1000,
            seed=3,
            policies=("static_alg1", "adaptive_gradient"),
            gradient_config=GradientConfig(gamma0=0.05, power=0.6, round_every=5),
        )
        grad = report.traces["adaptive_gradient"]
        static = report.traces["static_alg1"]
        tail_ratio = (
            grad.chunk_costs[-10:].sum() / static.chunk_costs[-10:].sum()
        )
        assert tail_ratio < 1.10
