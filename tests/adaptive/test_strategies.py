"""Engine-backed reactive strategies: parity with the legacy loop + shapes."""

import numpy as np
import pytest

from repro.adaptive import (
    STRATEGIES,
    ReactiveStrategyEngine,
    build_reactive_tables,
    replay_reactive,
    stream_type_ids,
)
from repro.baselines.reactive import simulate_reactive_caching
from repro.exceptions import InvalidProblemError

from tests.core.conftest import make_line_problem


@pytest.fixture(scope="module")
def line_problem():
    return make_line_problem(
        num_nodes=6,
        catalog_size=4,
        cache_nodes={2: 1, 3: 2},
        demand={
            ("item0", 5): 5.0,
            ("item1", 5): 2.0,
            ("item2", 5): 1.0,
            ("item3", 4): 1.0,
        },
    )


@pytest.fixture(scope="module")
def reactive_tables(line_problem):
    return build_reactive_tables(line_problem)


def legacy_stream(problem, n, seed):
    """The exact request-type draw of ``simulate_reactive_caching``."""
    requests = problem.requests
    rates = np.array([problem.demand[r] for r in requests])
    return np.random.default_rng(seed).choice(
        len(requests), size=n, p=rates / rates.sum()
    )


class TestReactiveTables:
    def test_types_follow_problem_order(self, line_problem, reactive_tables):
        assert list(reactive_tables.tables.types) == line_problem.requests

    def test_paths_end_at_pinned_origin(self, reactive_tables):
        rt = reactive_tables
        last = rt.pad_nodes[np.arange(rt.num_types), rt.path_len - 1]
        assert (last == rt.nodes.index(0)).all()
        assert rt.pad_pinned[np.arange(rt.num_types), rt.path_len - 1].all()

    def test_prefix_costs_monotone(self, reactive_tables):
        rt = reactive_tables
        diffs = np.diff(rt.pad_prefix_cost, axis=1)
        assert (diffs[rt.pad_valid[:, 1:]] > 0).all()

    def test_hash_assignment_deterministic(self, line_problem):
        a = build_reactive_tables(line_problem)
        b = build_reactive_tables(line_problem)
        assert (a.hash_node == b.hash_node).all()

    def test_unknown_strategy_rejected(self, reactive_tables):
        with pytest.raises(InvalidProblemError):
            ReactiveStrategyEngine(reactive_tables, strategy="nope")


class TestLegacyParity:
    """Engine at chunk_size=1 reproduces the fixed legacy loop exactly."""

    @pytest.mark.parametrize("policy", ["lru", "lfu"])
    def test_lce_chunk1_exact(self, line_problem, reactive_tables, policy):
        n, seed = 3000, 11
        legacy = simulate_reactive_caching(
            line_problem, policy=policy, n_requests=n,
            rng=np.random.default_rng(seed),
        )
        engine = replay_reactive(
            line_problem,
            strategy="lce",
            policy=policy,
            type_ids=legacy_stream(line_problem, n, seed),
            chunk_size=1,
            reactive=reactive_tables,
        )
        assert engine.cost_rate == pytest.approx(legacy.cost_rate, rel=1e-9)
        assert engine.edge_hit_ratio == pytest.approx(
            legacy.edge_hit_ratio, abs=1e-12
        )

    def test_chunked_close_to_serial(self, line_problem, reactive_tables):
        """Chunked execution lags state by at most a chunk; steady-state
        rates agree within a small tolerance."""
        stream = legacy_stream(line_problem, 6000, 5)
        serial = replay_reactive(
            line_problem, strategy="lce", type_ids=stream, chunk_size=1,
            reactive=reactive_tables,
        )
        chunked = replay_reactive(
            line_problem, strategy="lce", type_ids=stream, chunk_size=16,
            reactive=reactive_tables,
        )
        # Caches of size 1-2 make the chunk-start freeze maximally visible;
        # the lag costs a bounded fraction, not a different regime.
        assert chunked.cost_rate == pytest.approx(serial.cost_rate, rel=0.2)
        assert chunked.edge_hit_ratio == pytest.approx(
            serial.edge_hit_ratio, abs=0.2
        )

    def test_seeded_replay_deterministic(self, line_problem, reactive_tables):
        a = replay_reactive(
            line_problem, strategy="probcache", n_requests=2000,
            chunk_size=64, seed=9, reactive=reactive_tables,
        )
        b = replay_reactive(
            line_problem, strategy="probcache", n_requests=2000,
            chunk_size=64, seed=9, reactive=reactive_tables,
        )
        assert a.cost_rate == b.cost_rate
        assert (a.chunk_costs == b.chunk_costs).all()


class TestStrategyBehavior:
    @pytest.mark.parametrize("strategy", STRATEGIES)
    def test_all_strategies_run_and_hit(self, line_problem, reactive_tables, strategy):
        result = replay_reactive(
            line_problem, strategy=strategy, n_requests=3000,
            chunk_size=256, seed=2, reactive=reactive_tables,
        )
        assert result.requests > 0
        assert result.cost_rate > 0
        assert 0.0 <= result.edge_hit_ratio <= 1.0
        assert result.edge_hit_ratio > 0.0  # caches do something

    def test_lcd_inserts_only_downstream_cache(self, line_problem, reactive_tables):
        engine = ReactiveStrategyEngine(reactive_tables, strategy="lcd")
        t = list(reactive_tables.tables.types).index(("item0", 5))
        engine.step(np.array([t]))
        # First miss travels 5 -> 0; the highest on-path cache position
        # (closest to the origin) is node 2: only it stores the copy.
        state = engine.state
        item = reactive_tables.type_item[t]
        node2 = reactive_tables.nodes.index(2)
        node3 = reactive_tables.nodes.index(3)
        assert state.resident[node2, item]
        assert not state.resident[node3, item]

    def test_lce_inserts_every_on_path_cache(self, line_problem, reactive_tables):
        engine = ReactiveStrategyEngine(reactive_tables, strategy="lce")
        t = list(reactive_tables.tables.types).index(("item0", 5))
        engine.step(np.array([t]))
        item = reactive_tables.type_item[t]
        for node in (2, 3):
            assert engine.state.resident[reactive_tables.nodes.index(node), item]

    def test_cl4m_picks_max_betweenness(self, line_problem, reactive_tables):
        engine = ReactiveStrategyEngine(reactive_tables, strategy="cl4m")
        t = list(reactive_tables.tables.types).index(("item0", 5))
        engine.step(np.array([t]))
        rt = reactive_tables
        item = rt.type_item[t]
        stored = {int(v) for v in np.flatnonzero(engine.state.resident[:, item])}
        assert len(stored) == 1
        cache_ids = [rt.nodes.index(2), rt.nodes.index(3)]
        best_centrality = max(rt.centrality[v] for v in cache_ids)
        (designated,) = stored
        assert designated in cache_ids
        # The designated node carries maximal betweenness among on-path
        # caches (centrality ties resolve toward the requester).
        assert rt.centrality[designated] == pytest.approx(best_centrality)

    def test_hashrouting_stores_only_at_authoritative_cache(
        self, line_problem, reactive_tables
    ):
        engine = ReactiveStrategyEngine(reactive_tables, strategy="hashrouting")
        stream = legacy_stream(line_problem, 500, 3)
        for start in range(0, 500, 50):
            engine.step(stream[start : start + 50])
        rt = reactive_tables
        for item_idx in range(len(rt.items)):
            holders = set(np.flatnonzero(engine.state.resident[:, item_idx]))
            expected = {
                int(rt.hash_node[t])
                for t in range(rt.num_types)
                if rt.type_item[t] == item_idx
            }
            assert holders <= expected

    def test_stream_type_ids_length_and_determinism(self, reactive_tables):
        a = stream_type_ids(
            reactive_tables.tables, 5000, np.random.default_rng(4)
        )
        b = stream_type_ids(
            reactive_tables.tables, 5000, np.random.default_rng(4)
        )
        assert len(a) == 5000
        assert (a == b).all()
        assert a.max() < reactive_tables.num_types
