"""DegradedContext parity: derived contexts == fresh builds, bit for bit.

The failure-sweep fast path (:func:`repro.robustness.degraded.degraded_context`)
must never change a result — only how fast it is computed.  These tests
assert bit-identical distance matrices and ``w_max`` against
``SolverContext.from_problem`` across randomized single-link, k-link, and
node failures (including disconnecting ones), and that a full
``survivability_report`` with a threaded context equals the uncontexted one
record for record.
"""

import numpy as np
import pytest

from repro.core.context import SolverContext
from repro.robustness import (
    CapacityDegradation,
    FailureScenario,
    apply_failure,
    degraded_context,
    k_link_failures,
    single_link_failures,
    single_node_failures,
    survivability_report,
)
from repro.robustness.demo import gadget_placement, gadget_problem
from tests.core.conftest import random_uncapacitated_problem


def assert_context_parity(derived: SolverContext, degraded_problem) -> None:
    fresh = SolverContext.from_problem(degraded_problem)
    assert derived.dm.nodes == fresh.dm.nodes
    assert np.array_equal(derived.dm.matrix, fresh.dm.matrix)
    assert derived.w_max == fresh.w_max


class TestLinkFailures:
    @pytest.mark.parametrize("seed", range(6))
    def test_every_single_link_scenario(self, seed):
        problem = random_uncapacitated_problem(seed)
        parent = SolverContext.from_problem(problem)
        for scenario in single_link_failures(problem):
            degraded = apply_failure(problem, scenario)
            derived = degraded_context(parent, degraded)
            assert_context_parity(derived, degraded.problem)

    @pytest.mark.parametrize("seed", range(3))
    def test_sampled_double_link_scenarios(self, seed):
        problem = random_uncapacitated_problem(seed)
        parent = SolverContext.from_problem(problem)
        scenarios = k_link_failures(problem, 2)
        rng = np.random.default_rng(100 + seed)
        picks = rng.choice(len(scenarios), size=min(8, len(scenarios)), replace=False)
        for k in picks:
            degraded = apply_failure(problem, scenarios[int(k)])
            derived = degraded_context(parent, degraded)
            assert_context_parity(derived, degraded.problem)


class TestNodeFailures:
    @pytest.mark.parametrize("seed", range(4))
    def test_every_single_node_scenario(self, seed):
        problem = random_uncapacitated_problem(seed)
        parent = SolverContext.from_problem(problem)
        # Node 0 holds the pinned catalog; removing it leaves items with no
        # holders, which SolverContext tolerates (empty requester blocks).
        for scenario in single_node_failures(problem):
            degraded = apply_failure(problem, scenario)
            derived = degraded_context(parent, degraded)
            assert_context_parity(derived, degraded.problem)

    def test_disconnecting_node_failure(self):
        # The gadget's hub removal strands requesters: distances go inf and
        # the derived context must agree exactly.
        problem = gadget_problem()
        parent = SolverContext.from_problem(problem)
        for scenario in single_node_failures(problem):
            degraded = apply_failure(problem, scenario)
            derived = degraded_context(parent, degraded)
            assert_context_parity(derived, degraded.problem)


class TestCapacityOnly:
    def test_capacity_scenario_shares_parent_matrix(self):
        problem = random_uncapacitated_problem(0)
        parent = SolverContext.from_problem(problem)
        scenario = FailureScenario(
            name="brownout", faults=(CapacityDegradation(factor=0.5),)
        )
        degraded = apply_failure(problem, scenario)
        derived = degraded_context(parent, degraded)
        assert derived.dm is parent.dm  # shared, not copied
        assert derived.problem is degraded.problem


class TestReportParity:
    @pytest.mark.parametrize("repair", [False, True])
    def test_report_with_context_is_identical(self, repair):
        problem = gadget_problem()
        placement = gadget_placement()
        scenarios = single_link_failures(problem) + single_node_failures(
            problem, exclude=("s",)
        )
        plain = survivability_report(problem, placement, scenarios, repair=repair)
        context = SolverContext.from_problem(problem)
        fast = survivability_report(
            problem, placement, scenarios, repair=repair, context=context
        )
        assert plain.healthy_cost == fast.healthy_cost
        assert len(plain.records) == len(fast.records)
        for a, b in zip(plain.records, fast.records):
            assert a == b

    def test_report_with_context_random_instances(self):
        for seed in range(3):
            problem = random_uncapacitated_problem(seed)
            context = SolverContext.from_problem(problem)
            from repro.core.submodular import greedy_rnr_placement

            placement = greedy_rnr_placement(problem, context=context)
            scenarios = single_link_failures(problem)
            plain = survivability_report(
                problem, placement, scenarios, repair=True
            )
            fast = survivability_report(
                problem, placement, scenarios, repair=True, context=context
            )
            assert plain.records == fast.records
