"""Timeline-driven streaming replay: exact + statistical parity, riders."""

import json
import math

import numpy as np
import pytest

from repro.adaptive import ReactiveStrategyEngine, build_reactive_tables
from repro.exceptions import InvalidProblemError
from repro.robustness import (
    StreamingSummary,
    TimelineConfig,
    generate_timeline,
    replay_timeline,
    replay_timeline_streaming,
)
from repro.robustness.demo import gadget_placement, gadget_problem
from repro.serving import ServingConfig
from repro.workload import FlashCrowd, PopularityChurn

_TOL = 1e-9


@pytest.fixture(scope="module")
def gadget():
    problem = gadget_problem()
    return problem, gadget_placement()


@pytest.fixture(scope="module")
def timeline(gadget):
    problem, _ = gadget
    tl = generate_timeline(
        problem,
        TimelineConfig(
            horizon=40.0,
            link_mtbf=20.0,
            link_mttr=3.0,
            node_mtbf=60.0,
            node_mttr=5.0,
            flap_probability=0.2,
            flap_mttr=0.05,
            exclude_nodes=("s",),
        ),
        seed=7,
    )
    assert len(tl.events) >= 10
    return tl


def _stream(gadget, timeline, *, requests=40_000, n_shards=1, seed=0, **kw):
    problem, placement = gadget
    rate_scale = requests / (problem.total_demand * timeline.horizon)
    config = ServingConfig(
        horizon=timeline.horizon, seed=seed, n_shards=n_shards
    )
    return replay_timeline_streaming(
        problem, placement, timeline,
        config=config, rate_scale=rate_scale, **kw,
    )


class TestExactParity:
    """The analytic side of the streaming replay IS the plain replay."""

    def test_analytic_report_equals_plain_replay(self, gadget, timeline):
        problem, placement = gadget
        report = _stream(gadget, timeline)
        plain = replay_timeline(problem, placement, timeline)
        assert report.analytic == plain  # streaming excluded from compare

    def test_segment_rates_integrate_to_analytic(self, gadget, timeline):
        report = _stream(gadget, timeline)
        segs = report.segments
        assert segs[0].start == 0.0
        assert segs[-1].end == timeline.horizon
        for a, b in zip(segs, segs[1:]):
            assert a.end == b.start
        cost = sum(s.cost_rate * s.duration for s in segs)
        served = sum(s.served_rate * s.duration for s in segs)
        offered = sum(s.offered_rate * s.duration for s in segs)
        analytic = report.analytic
        assert cost == pytest.approx(analytic.cost_integral, rel=_TOL)
        assert served == pytest.approx(
            analytic.total_demand * analytic.horizon
            - analytic.unserved_integral,
            rel=_TOL,
        )
        assert offered == pytest.approx(
            analytic.total_demand * analytic.horizon, rel=_TOL
        )

    def test_offered_load_semantics_keep_rates(self, gadget, timeline):
        """Dead paths drop mass from served, never from arrivals."""
        report = _stream(gadget, timeline)
        base = report.segments[0].tables
        for seg in report.segments:
            assert seg.tables.total_rate == pytest.approx(
                base.total_rate, rel=_TOL
            )
            assert seg.served_rate <= seg.offered_rate + _TOL


class TestStatisticalParity:
    def test_six_sigma_gates(self, gadget, timeline):
        report = _stream(gadget, timeline, requests=60_000)
        assert abs(report.generated - report.expected_generated) <= 6 * math.sqrt(
            report.expected_generated
        )
        assert abs(report.served - report.expected_served) <= 6 * math.sqrt(
            report.expected_served
        )
        assert abs(report.delivered_cost - report.expected_cost) <= 6 * math.sqrt(
            report.cost_variance
        )
        # The estimator tracks the exact integral through the same gate.
        sigma = math.sqrt(report.cost_variance) / report.rate_scale
        assert abs(
            report.streamed_cost_integral - report.analytic.cost_integral
        ) <= 6 * sigma

    def test_counts_conserve(self, gadget, timeline):
        report = _stream(gadget, timeline)
        assert report.generated == int(report.per_type_generated.sum())
        assert report.served == int(report.per_type_served.sum())
        assert report.served + report.dropped == report.generated
        assert (report.per_type_served <= report.per_type_generated).all()
        assert report.generated == sum(s.generated for s in report.segments)
        assert report.served == sum(s.served for s in report.segments)

    def test_sharded_stream_passes_same_gates(self, gadget, timeline):
        report = _stream(gadget, timeline, n_shards=3)
        assert report.n_shards == 3
        assert abs(report.generated - report.expected_generated) <= 6 * math.sqrt(
            report.expected_generated
        )


class TestDeterminism:
    def test_same_seed_identical(self, gadget, timeline):
        a = _stream(gadget, timeline, seed=5)
        b = _stream(gadget, timeline, seed=5)
        assert a.generated == b.generated
        assert a.served == b.served
        assert a.delivered_cost == b.delivered_cost
        assert np.array_equal(a.per_type_generated, b.per_type_generated)

    def test_different_seed_differs(self, gadget, timeline):
        a = _stream(gadget, timeline, seed=5)
        b = _stream(gadget, timeline, seed=6)
        assert a.generated != b.generated or a.delivered_cost != b.delivered_cost


class TestWorkloadRegimes:
    def test_breakpoints_open_segments(self, gadget, timeline):
        plain = _stream(gadget, timeline)
        churn = PopularityChurn(interval=7.0, seed=1)
        report = _stream(gadget, timeline, workload=churn)
        kinds = [k for s in report.segments for k in s.kinds]
        assert "workload" in kinds
        assert len(report.segments) > len(plain.segments)
        # Churn conserves the offered rate exactly in every segment.
        base = plain.segments[0].tables.total_rate
        for seg in report.segments:
            assert seg.offered_rate == pytest.approx(base, rel=_TOL)

    def test_flash_crowd_raises_offered_mass(self, gadget, timeline):
        problem, _ = gadget
        item = problem.catalog[0]
        fc = FlashCrowd(
            start=10.0, duration=5.0, hot_items=(item,), multiplier=50.0
        )
        plain = _stream(gadget, timeline)
        report = _stream(gadget, timeline, workload=fc)
        extra = sum(
            (s.offered_rate - plain.segments[0].tables.total_rate) * s.duration
            for s in report.segments
        )
        assert extra > 0.0
        assert report.expected_generated > plain.expected_generated


class TestReactiveRiders:
    def test_strategies_survive_failures(self):
        from repro.robustness.chaos import random_placement, random_problem

        rng = np.random.default_rng(2)
        problem = random_problem(rng, n_nodes=8, n_items=3)
        placement = random_placement(rng, problem)
        timeline = generate_timeline(
            problem,
            TimelineConfig(
                horizon=30.0, link_mtbf=15.0, link_mttr=4.0,
                node_mtbf=40.0, node_mttr=6.0,
            ),
            seed=4,
        )
        rt = build_reactive_tables(problem)
        engines = {
            name: ReactiveStrategyEngine(rt, strategy=name, seed=3)
            for name in ("lce", "probcache")
        }
        report = _stream(
            (problem, placement), timeline, requests=20_000, reactive=engines
        )
        assert set(report.reactive_costs) == {"lce", "probcache"}
        for name, cost in report.reactive_costs.items():
            assert math.isfinite(cost) and cost > 0.0
            assert report.reactive_edge_hits[name] >= 0
        # After the run, caches at nodes still down hold nothing.
        last = report.segments[-1]
        for engine in engines.values():
            node_id = {v: k for k, v in enumerate(engine.rt.nodes)}
            for v in last.down_nodes:
                if v in node_id:
                    assert not engine.state.resident[node_id[v]].any()


class TestValidation:
    def test_horizon_mismatch_raises(self, gadget, timeline):
        problem, placement = gadget
        with pytest.raises(InvalidProblemError, match="horizon"):
            replay_timeline_streaming(
                problem, placement, timeline,
                config=ServingConfig(horizon=timeline.horizon + 1.0),
                rate_scale=0.1,
            )

    @pytest.mark.parametrize("bad", [0.0, -1.0, float("nan"), float("inf")])
    def test_bad_rate_scale_raises(self, gadget, timeline, bad):
        problem, placement = gadget
        with pytest.raises(InvalidProblemError, match="rate_scale"):
            replay_timeline_streaming(
                problem, placement, timeline, rate_scale=bad
            )

    def test_max_requests_guard(self, gadget, timeline):
        problem, placement = gadget
        with pytest.raises(InvalidProblemError, match="max_requests"):
            replay_timeline_streaming(
                problem, placement, timeline,
                config=ServingConfig(horizon=timeline.horizon, max_requests=10),
                rate_scale=1.0,
            )


class TestReportPlumbing:
    def test_summary_json_round_trip(self, gadget, timeline):
        report = _stream(gadget, timeline)
        summary = report.summary()
        assert report.analytic.streaming == summary
        dumped = json.dumps(summary.to_json_dict(), allow_nan=False)
        back = StreamingSummary.from_json_dict(json.loads(dumped))
        assert back == summary
        assert back.segment_dropped == summary.segment_dropped

    def test_timeline_report_json_strict(self, gadget, timeline):
        report = _stream(gadget, timeline)
        payload = report.analytic.to_json_dict()
        text = json.dumps(payload, allow_nan=False)  # strict: no NaN leaks
        data = json.loads(text)
        assert data["streaming"]["generated"] == report.generated
        assert data["streaming"]["segments"] == len(report.segments)
        # Plain replays keep the field as an explicit null.
        problem, placement = gadget
        plain = replay_timeline(problem, placement, timeline)
        assert json.loads(
            json.dumps(plain.to_json_dict(), allow_nan=False)
        )["streaming"] is None

    def test_format_mentions_stream(self, gadget, timeline):
        report = _stream(gadget, timeline)
        text = report.format()
        assert "streamed" in text
        assert f"{report.generated} requests" in text

    def test_observer_chains(self, gadget, timeline):
        seen = []
        _stream(
            gadget, timeline,
            observer=lambda phase, t, ctl, detail: seen.append(phase),
        )
        assert seen[0] == "init"
        assert "event" in seen and seen[-1] == "end"
