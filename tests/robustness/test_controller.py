"""Online recovery controller: static parity, policies, exact integration."""

import networkx as nx
import pytest

from repro.core.context import SolverContext
from repro.core.problem import ProblemInstance, pin_full_catalog
from repro.core.solution import Placement
from repro.exceptions import InvalidProblemError
from repro.graph.network import CacheNetwork
from repro.robustness import (
    FailureEvent,
    FailureTimeline,
    LinkFailure,
    NodeFailure,
    RecoveryPolicy,
    RepairEvent,
    TimelineConfig,
    generate_timeline,
    replay_timeline,
    single_link_failures,
    single_node_failures,
)
from repro.robustness.chaos import check_static_parity
from repro.robustness.demo import gadget_placement, gadget_problem

_TOL = 1e-9


def line_problem():
    """Origin ``a`` pinned, single client ``b`` one link away."""
    g = nx.DiGraph()
    g.add_edge("a", "b", cost=1.0, capacity=float("inf"))
    net = CacheNetwork(g, {"a": 1.0})
    catalog = ("i",)
    return ProblemInstance(
        net, catalog, {("i", "b"): 2.0}, pinned=pin_full_catalog(catalog, ["a"])
    )


def manual_timeline(events, *, horizon, name="manual"):
    return FailureTimeline(name=name, horizon=horizon, events=tuple(events))


class TestStaticParity:
    """A single permanent failure at t=0 IS the static survivability path."""

    @pytest.mark.parametrize("repair", [False, True])
    @pytest.mark.parametrize("with_context", [False, True])
    def test_every_gadget_single_fault(self, repair, with_context):
        problem = gadget_problem()
        placement = gadget_placement()
        context = SolverContext.from_problem(problem) if with_context else None
        scenarios = single_link_failures(problem) + single_node_failures(
            problem, exclude=("s",)
        )
        assert scenarios
        for scenario in scenarios:
            check_static_parity(
                problem, placement, scenario, repair=repair, context=context
            )


class TestExactIntegration:
    def test_outage_window_availability(self):
        problem = line_problem()
        fault = LinkFailure("a", "b")
        timeline = manual_timeline(
            [FailureEvent(2.0, fault), RepairEvent(5.0, fault)], horizon=10.0
        )
        report = replay_timeline(problem, Placement(), timeline)
        # Demand 2.0 is dark exactly during [2, 5): availability 7/10.
        assert report.availability == pytest.approx(0.7, abs=_TOL)
        assert report.unserved_integral == pytest.approx(6.0, abs=_TOL)
        assert report.reoptimizations == 2
        # The post-repair action recovers the healthy cost exactly.
        assert report.actions[-1].record.cost_inflation == pytest.approx(1.0)
        assert report.actions[-1].record.unserved_fraction == 0.0

    def test_requester_death_charges_lost_demand(self):
        problem = line_problem()
        timeline = manual_timeline(
            [FailureEvent(4.0, NodeFailure("b"))], horizon=10.0
        )
        report = replay_timeline(problem, Placement(), timeline)
        assert report.availability == pytest.approx(0.4, abs=_TOL)
        record = report.final_record
        assert record.unserved_fraction == pytest.approx(1.0)

    def test_event_outside_horizon_rejected(self):
        problem = line_problem()
        timeline = manual_timeline(
            [FailureEvent(10.0, LinkFailure("a", "b"))], horizon=10.0
        )
        with pytest.raises(InvalidProblemError, match="outside"):
            replay_timeline(problem, Placement(), timeline)

    def test_repair_of_inactive_fault_rejected(self):
        problem = line_problem()
        timeline = manual_timeline(
            [RepairEvent(1.0, LinkFailure("a", "b"))], horizon=10.0
        )
        with pytest.raises(InvalidProblemError, match="inactive"):
            replay_timeline(problem, Placement(), timeline)


class TestPolicies:
    def test_absorbed_flap_never_reoptimizes(self):
        problem = line_problem()
        fault = LinkFailure("a", "b")
        timeline = manual_timeline(
            [FailureEvent(2.0, fault, transient=True), RepairEvent(2.1, fault)],
            horizon=10.0,
        )
        policy = RecoveryPolicy(detection_delay=0.5)
        report = replay_timeline(problem, Placement(), timeline, policy)
        assert report.reoptimizations == 0
        assert report.reroutes_avoided == 1
        # The 0.1-long outage is still charged (rate 2.0 over 0.1 time).
        assert report.unserved_integral == pytest.approx(0.2, abs=_TOL)

    def test_backoff_retries_before_committing(self):
        problem = line_problem()
        fault = LinkFailure("a", "b")
        timeline = manual_timeline([FailureEvent(2.0, fault)], horizon=10.0)
        policy = RecoveryPolicy(flap_backoff=0.5, max_retries=2)
        report = replay_timeline(problem, Placement(), timeline, policy)
        # Checks at 2.0 and 2.5 back off; the one at 3.5 commits.
        assert report.reoptimizations == 1
        assert report.actions[0].time == pytest.approx(3.5)
        assert report.actions[0].latency == pytest.approx(1.5)

    def test_detection_delay_sets_latency(self):
        problem = gadget_problem()
        timeline = manual_timeline(
            [FailureEvent(1.0, LinkFailure("v1", "s"))], horizon=5.0
        )
        policy = RecoveryPolicy(detection_delay=0.75)
        report = replay_timeline(problem, gadget_placement(), timeline, policy)
        assert report.reoptimizations == 1
        assert report.actions[0].time == pytest.approx(1.75)
        assert report.actions[0].latency == pytest.approx(0.75)
        assert report.mean_recovery_latency == pytest.approx(0.75)

    def test_min_dwell_defers_and_coalesces(self):
        problem = gadget_problem()
        timeline = manual_timeline(
            [
                FailureEvent(1.0, LinkFailure("v1", "s")),
                FailureEvent(2.0, LinkFailure("v2", "s")),
            ],
            horizon=20.0,
        )
        policy = RecoveryPolicy(min_dwell=5.0)
        report = replay_timeline(problem, gadget_placement(), timeline, policy)
        assert report.reoptimizations == 2
        assert report.deferrals == 1
        assert report.actions[1].time == pytest.approx(6.0)  # 1.0 + dwell
        assert report.actions[1].latency == pytest.approx(4.0)

    def test_repair_after_gates_refill(self):
        problem = gadget_problem()
        timeline = manual_timeline(
            [FailureEvent(1.0, NodeFailure("v2"))], horizon=5.0
        )
        gated = replay_timeline(
            problem,
            gadget_placement(),
            timeline,
            RecoveryPolicy(repair=True, repair_after=3.0),
        )
        eager = replay_timeline(
            problem,
            gadget_placement(),
            timeline,
            RecoveryPolicy(repair=True),
        )
        # The only action fires at outage age 0 < 3: repair is suppressed.
        assert gated.repaired_entries == 0
        assert eager.repaired_entries >= gated.repaired_entries

    def test_flap_wipes_cache_until_reoptimization(self):
        # A node flap absorbed by backoff still emptied the cache: the stale
        # routing keeps pointing at it but delivers nothing from it.
        problem = gadget_problem()
        fault = NodeFailure("v1")
        timeline = manual_timeline(
            [FailureEvent(1.0, fault, transient=True), RepairEvent(1.05, fault)],
            horizon=4.0,
        )
        policy = RecoveryPolicy(detection_delay=0.5)
        report = replay_timeline(problem, gadget_placement(), timeline, policy)
        assert report.reoptimizations == 0
        assert report.reroutes_avoided == 1
        # item1 (rate 10 of 10.01) stays dark after the flap: availability
        # collapses to roughly the first healthy unit of time.
        assert report.availability < 0.5


class TestIncrementalParity:
    @pytest.mark.parametrize("repair", [False, True])
    def test_incremental_rebuild_and_no_context_agree(self, repair):
        problem = gadget_problem()
        placement = gadget_placement()
        timeline = generate_timeline(
            problem,
            TimelineConfig(
                horizon=120.0,
                link_mtbf=15.0,
                link_mttr=3.0,
                node_mtbf=60.0,
                node_mttr=5.0,
                flap_probability=0.3,
                exclude_nodes=("s", "vs"),
            ),
            seed=11,
        )
        assert len(timeline.events) > 10
        policy = RecoveryPolicy(
            detection_delay=0.2, flap_backoff=0.1, max_retries=1, repair=repair
        )
        context = SolverContext.from_problem(problem)
        incremental = replay_timeline(
            problem, placement, timeline, policy, context=context
        )
        rebuilt = replay_timeline(
            problem, placement, timeline, policy, context=context,
            incremental=False,
        )
        plain = replay_timeline(problem, placement, timeline, policy)
        assert incremental.reoptimizations > 0
        assert incremental == rebuilt
        assert incremental == plain
