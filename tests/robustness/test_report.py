"""Survivability reporting: records, aggregates, and formatting."""

import pytest

from repro.robustness import (
    FailureScenario,
    LinkFailure,
    apply_failure,
    recover,
    single_link_failures,
    single_node_failures,
    survivability_record,
    survivability_report,
)
from repro.robustness.demo import gadget_placement, gadget_problem, run_gadget_demo


@pytest.fixture(scope="module")
def gadget_report():
    return run_gadget_demo(repair=True)


class TestRecord:
    def test_detour_scenario_fields(self):
        problem = gadget_problem(lam=10.0, eps=0.01, w=5.0)
        degraded = apply_failure(
            problem, FailureScenario("f", (LinkFailure("v1", "s"),))
        )
        result = recover(degraded, gadget_placement())
        record = survivability_record(result, healthy_cost=1.0)
        # item1 detours vs->v2->s (cost 10), item2 stays on v2->s (cost 5).
        assert record.cost == pytest.approx(10.0 * 10.0 + 0.01 * 5.0)
        assert record.cost_inflation == pytest.approx(record.cost)
        assert record.fully_served
        assert record.unserved_fraction == 0.0
        assert record.stranded_requests == 0
        assert record.scenario == "f"

    def test_zero_healthy_cost_inflation(self):
        problem = gadget_problem()
        degraded = apply_failure(
            problem, FailureScenario("f", (LinkFailure("v1", "s"),))
        )
        result = recover(degraded, gadget_placement())
        record = survivability_record(result, healthy_cost=0.0)
        assert record.cost_inflation == float("inf")


class TestReport:
    def test_gadget_fully_survives_single_faults(self, gadget_report):
        assert gadget_report.fully_served_scenarios == len(gadget_report.records)
        assert gadget_report.worst_unserved_fraction == 0.0
        # Both client links survive every single fault, so inflation >= 1.
        assert gadget_report.worst_cost_inflation >= 1.0

    def test_inflation_at_least_one_when_fully_served(self):
        problem = gadget_problem()
        placement = gadget_placement()
        scenarios = single_link_failures(problem) + single_node_failures(
            problem, exclude=("s",)
        )
        report = survivability_report(problem, placement, scenarios)
        for record in report.records:
            if record.fully_served:
                assert record.cost_inflation >= 1.0 - 1e-9, record.scenario

    def test_rows_align_with_records(self, gadget_report):
        rows = gadget_report.rows()
        assert len(rows) == len(gadget_report.records)
        for row, record in zip(rows, gadget_report.records):
            assert row["scenario"] == record.scenario
            assert row["inflation"] == record.cost_inflation
            assert row["unserved"] == record.unserved_fraction

    def test_format_is_readable(self, gadget_report):
        text = gadget_report.format(title="gadget")
        assert "gadget" in text
        assert "fully served" in text
        assert "worst inflation" in text
        for record in gadget_report.records:
            assert record.scenario in text

    def test_empty_report_defaults(self):
        problem = gadget_problem()
        report = survivability_report(problem, gadget_placement(), [])
        assert report.records == []
        assert report.worst_cost_inflation == 1.0
        assert report.worst_unserved_fraction == 0.0
        assert report.fully_served_scenarios == 0


class TestSatelliteColumns:
    def test_rows_expose_stranded_and_dropped(self, gadget_report):
        for row, record in zip(gadget_report.rows(), gadget_report.records):
            assert row["stranded"] == record.stranded_requests
            assert row["dropped"] == record.dropped_entries

    def test_format_includes_new_columns(self, gadget_report):
        text = gadget_report.format()
        assert "stranded" in text
        assert "dropped" in text


class TestJsonRoundTrip:
    def test_gadget_report_round_trips(self, gadget_report):
        from repro.robustness import SurvivabilityReport

        text = gadget_report.to_json(indent=2)
        clone = SurvivabilityReport.from_json(text)
        assert clone == gadget_report

    def test_infinite_inflation_survives_strict_json(self):
        import json

        from repro.robustness import SurvivabilityRecord, SurvivabilityReport

        report = SurvivabilityReport(
            healthy_cost=0.0,
            records=[
                SurvivabilityRecord(
                    scenario="isolated",
                    cost=4.2,
                    cost_inflation=float("inf"),
                    unserved_fraction=1.0,
                    congestion=0.0,
                    stranded_requests=2,
                    dropped_entries=1,
                    repaired_entries=0,
                )
            ],
        )
        text = report.to_json()
        # Strict JSON: parseable by any consumer, no Infinity token.
        assert "Infinity" not in text
        json.loads(text)
        clone = SurvivabilityReport.from_json(text)
        assert clone == report
        assert clone.records[0].cost_inflation == float("inf")
