"""Tests for the failure-resilience subsystem."""
