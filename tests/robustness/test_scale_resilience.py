"""Tier-aware resilience: dense and lazy contexts agree through the stack.

The tentpole guarantee of the scale-resilience work is that every layer of
the robustness subsystem — degraded-context derivation, recovery, timeline
replay, cluster-local re-optimization — produces *bit-identical* results
whether the threaded :class:`~repro.core.context.SolverContext` sits on the
dense all-pairs matrix or on a :class:`~repro.graph.backends.LazyRowBackend`.
These tests sweep the embedded mid-size topologies (the largest graphs
where both tiers are cheap enough to build side by side) and finish with a
reduced-scale chaos smoke on a generated hierarchy.
"""

import numpy as np
import pytest

from repro.core import (
    ProblemInstance,
    check_feasibility,
    partition_graph,
    pin_full_catalog,
    touched_clusters,
)
from repro.core.context import SolverContext
from repro.graph import CacheNetwork, abovenet, abvt, deltacom, tinet
from repro.graph.backends import DenseBackend, LazyRowBackend
from repro.robustness import (
    FailureScenario,
    InvariantChecker,
    LinkFailure,
    RecoveryPolicy,
    ScaleChaosConfig,
    TimelineConfig,
    apply_failure,
    canonical_links,
    cluster_local_recover,
    degraded_context,
    generate_timeline,
    hierarchy_problem,
    recover,
    replay_timeline,
    run_scale_chaos,
    timeline_from_scenario,
)
from repro.robustness.chaos import random_placement

TOPOLOGIES = [abovenet, abvt, tinet, deltacom]


def midsize_problem(factory, seed: int = 0) -> ProblemInstance:
    net = factory()
    nodes = list(net.nodes)
    rng = np.random.default_rng(seed)
    items = [f"it{k}" for k in range(4)]
    demand = {}
    for it in items:
        for s in rng.choice(len(nodes), size=min(6, len(nodes)), replace=False):
            demand[(it, nodes[int(s)])] = round(float(rng.uniform(0.5, 2.0)), 3)
    return ProblemInstance(
        network=CacheNetwork(net.graph, {v: 2.0 for v in nodes}),
        catalog=tuple(items),
        demand=demand,
        pinned=pin_full_catalog(items, [nodes[0]]),
    )


def sample_link_scenario(problem, seed: int = 0) -> FailureScenario:
    links = canonical_links(problem)
    rng = np.random.default_rng(seed)
    u, v = links[int(rng.integers(len(links)))]
    return FailureScenario(f"link:{u}-{v}", (LinkFailure(u, v),))


def assert_lazy_rows_match_dense(lazy_ctx, dense_ctx) -> None:
    assert lazy_ctx.backend.nodes == dense_ctx.backend.nodes
    n = len(dense_ctx.backend.nodes)
    idx = np.arange(n, dtype=np.intp)
    assert np.array_equal(lazy_ctx.backend.rows(idx), dense_ctx.backend.rows(idx))


class TestDegradedContextTiers:
    @pytest.mark.parametrize("factory", TOPOLOGIES)
    def test_lazy_derived_matches_dense_and_fresh(self, factory):
        problem = midsize_problem(factory)
        dense_parent = SolverContext.from_problem(problem, backend="dense")
        lazy_parent = SolverContext.from_problem(problem, backend="lazy")
        assert isinstance(dense_parent.backend, DenseBackend)
        assert isinstance(lazy_parent.backend, LazyRowBackend)
        for seed in range(3):
            scenario = sample_link_scenario(problem, seed=seed)
            degraded = apply_failure(problem, scenario)
            dense_child = degraded_context(dense_parent, degraded)
            lazy_child = degraded_context(lazy_parent, degraded)
            assert isinstance(lazy_child.backend, LazyRowBackend)
            # lazy-derived == dense-derived == fresh lazy build, bit for bit
            assert_lazy_rows_match_dense(lazy_child, dense_child)
            fresh = SolverContext.from_problem(degraded.problem, backend="lazy")
            assert_lazy_rows_match_dense(lazy_child, fresh)

    def test_capacity_only_failure_shares_backend(self):
        problem = midsize_problem(tinet)
        parent = SolverContext.from_problem(problem, backend="lazy")
        from repro.robustness import CapacityDegradation

        scenario = FailureScenario("cap", (CapacityDegradation(factor=0.5),))
        degraded = apply_failure(problem, scenario)
        child = degraded_context(parent, degraded)
        assert child.backend is parent.backend


class TestRecoverParity:
    @pytest.mark.parametrize("factory", TOPOLOGIES)
    def test_recover_identical_across_tiers(self, factory):
        problem = midsize_problem(factory)
        rng = np.random.default_rng(1)
        placement = random_placement(rng, problem)
        scenario = sample_link_scenario(problem, seed=2)
        degraded = apply_failure(problem, scenario)
        results = {}
        for tier in ("dense", "lazy"):
            parent = SolverContext.from_problem(problem, backend=tier)
            ctx = degraded_context(parent, degraded)
            results[tier] = recover(
                degraded, placement.copy(), repair=False, context=ctx
            )
        dense, lazy = results["dense"], results["lazy"]
        # Placement compares by identity; compare the sparse maps directly
        assert dict(dense.placement.items()) == dict(lazy.placement.items())
        assert dense.dropped == lazy.dropped
        assert dense.repaired == lazy.repaired
        assert dense.stranded == lazy.stranded
        assert dense.routing == lazy.routing
        assert dense.unserved_fraction == lazy.unserved_fraction


class TestTimelineReplayParity:
    @pytest.mark.parametrize("factory", TOPOLOGIES)
    def test_single_permanent_failure_replay(self, factory):
        problem = midsize_problem(factory)
        rng = np.random.default_rng(3)
        placement = random_placement(rng, problem)
        scenario = sample_link_scenario(problem, seed=4)
        timeline = timeline_from_scenario(scenario, horizon=2.0)
        policy = RecoveryPolicy(detection_delay=0.1)
        reports = {}
        for tier in ("dense", "lazy"):
            ctx = SolverContext.from_problem(problem, backend=tier)
            reports[tier] = replay_timeline(
                problem, placement.copy(), timeline, policy, context=ctx
            )
        # TimelineReport equality excludes wall-clock; everything else
        # (availability curve, reopt count, final state) must agree exactly
        assert reports["dense"] == reports["lazy"]

    @pytest.mark.parametrize("factory", [abovenet, tinet])
    def test_generated_timeline_replay_parity(self, factory):
        problem = midsize_problem(factory, seed=5)
        rng = np.random.default_rng(6)
        placement = random_placement(rng, problem)
        timeline = generate_timeline(
            problem,
            TimelineConfig(horizon=20.0, link_mtbf=40.0, link_mttr=2.0),
            seed=7,
        )
        policy = RecoveryPolicy(detection_delay=0.2)
        reports = {}
        for tier in ("dense", "lazy"):
            ctx = SolverContext.from_problem(problem, backend=tier)
            reports[tier] = replay_timeline(
                problem, placement.copy(), timeline, policy, context=ctx
            )
        assert reports["dense"] == reports["lazy"]


class TestClusterLocalRecovery:
    @pytest.mark.parametrize("factory", [tinet, deltacom])
    def test_local_matches_global_unserved(self, factory):
        problem = midsize_problem(factory, seed=8)
        rng = np.random.default_rng(9)
        placement = random_placement(rng, problem)
        partition = partition_graph(problem.network, seed=0)
        scenario = sample_link_scenario(problem, seed=10)
        degraded = apply_failure(problem, scenario)
        parent = SolverContext.from_problem(problem, backend="lazy")
        ctx = degraded_context(parent, degraded)
        touched = touched_clusters(
            partition,
            failed_nodes=degraded.failed_nodes,
            failed_links=degraded.failed_links,
        )
        assert 0 < len(touched) <= partition.n_clusters
        local = cluster_local_recover(degraded, placement, partition, context=ctx)
        # only touched clusters may change placement
        for (v, _item) in set(local.placement) ^ set(
            recover(degraded, placement, repair=False, context=ctx).placement
        ):
            assert partition.labels[v] in touched, v
        # the local re-solve must stay feasible and serve the same demand
        feas = check_feasibility(degraded.problem, local.solution)
        assert feas.feasible, feas
        global_result = recover(degraded, placement, repair=False, context=ctx)
        assert local.unserved_fraction == pytest.approx(
            global_result.unserved_fraction, abs=1e-9
        )

    def test_replay_with_partition_under_strict_invariants(self):
        problem = midsize_problem(tinet, seed=11)
        rng = np.random.default_rng(12)
        placement = random_placement(rng, problem)
        timeline = generate_timeline(
            problem,
            TimelineConfig(horizon=20.0, link_mtbf=30.0, link_mttr=2.0),
            seed=13,
        )
        policy = RecoveryPolicy(detection_delay=0.2, min_dwell=2.0, repair=False)
        ctx = SolverContext.from_problem(problem, backend="lazy")
        partition = partition_graph(problem.network, seed=0)
        checker = InvariantChecker(strict=True)
        report = replay_timeline(
            problem,
            placement,
            timeline,
            policy,
            context=ctx,
            observer=checker,
            partition=partition,
        )
        assert report.events == len(timeline)
        assert checker.violations == []


class TestScaleChaosSmoke:
    def test_reduced_hierarchy_campaign(self):
        report = run_scale_chaos(
            ScaleChaosConfig(
                campaigns=1,
                seed=0,
                n_total=200,
                n_items=6,
                horizon=15.0,
                min_events=8,
            ),
            raise_on_violation=True,
        )
        assert report.ok
        summary = dict(report.summary())
        assert summary["total_violations"] == 0
        assert summary["total_events"] >= 8

    def test_hierarchy_problem_shape(self):
        problem = hierarchy_problem(300, n_items=5, n_caches=20, n_requesters=30)
        assert problem.network.num_nodes == 300
        assert len(problem.catalog) == 5
        holders = {v for (v, _item) in problem.pinned}
        assert len(holders) == 1
        # the origin pins the full catalog
        assert len(problem.pinned) == 5
