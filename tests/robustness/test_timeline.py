"""Discrete-event timeline generation: determinism, ordering, flaps, SRLGs."""

import pytest

from repro.exceptions import InvalidProblemError
from repro.robustness import (
    FailureEvent,
    FailureScenario,
    LinkFailure,
    NodeFailure,
    RepairEvent,
    TimelineConfig,
    canonical_links,
    generate_timeline,
    timeline_from_scenario,
)
from repro.robustness.demo import gadget_problem

BUSY = TimelineConfig(horizon=200.0, link_mtbf=10.0, link_mttr=2.0)


@pytest.fixture(scope="module")
def problem():
    return gadget_problem()


class TestGenerateTimeline:
    def test_same_seed_bit_identical(self, problem):
        a = generate_timeline(problem, BUSY, seed=3)
        b = generate_timeline(problem, BUSY, seed=3)
        assert a == b
        assert a.events  # the busy config actually produces events

    def test_different_seed_differs(self, problem):
        a = generate_timeline(problem, BUSY, seed=3)
        b = generate_timeline(problem, BUSY, seed=4)
        assert a.events != b.events

    def test_events_sorted_and_inside_horizon(self, problem):
        timeline = generate_timeline(problem, BUSY, seed=0)
        times = [e.time for e in timeline.events]
        assert times == sorted(times)
        assert all(0.0 <= t < BUSY.horizon for t in times)

    def test_repairs_match_failures_per_fault(self, problem):
        timeline = generate_timeline(problem, BUSY, seed=1)
        for fault in timeline.fault_universe():
            downs = [e for e in timeline.failures if e.fault == fault]
            ups = [e for e in timeline.repairs if e.fault == fault]
            # Alternating renewal: every repair follows a failure; at most
            # the final failure may be left unrepaired at the horizon.
            assert len(downs) - len(ups) in (0, 1)

    def test_flaps_marked_transient_and_short(self, problem):
        config = TimelineConfig(
            horizon=500.0,
            link_mtbf=10.0,
            link_mttr=20.0,
            flap_probability=1.0,
            flap_mttr=0.01,
        )
        timeline = generate_timeline(problem, config, seed=0)
        failures = timeline.failures
        assert failures and all(e.transient for e in failures)
        # With flap_mttr=0.01 vs mttr=20 the draws are unmistakably short.
        durations = []
        for fault in timeline.fault_universe():
            history = [e for e in timeline.events if e.fault == fault]
            for down, up in zip(history[:-1], history[1:]):
                if isinstance(down, FailureEvent) and isinstance(up, RepairEvent):
                    durations.append(up.time - down.time)
        assert durations and max(durations) < 1.0

    def test_srlg_members_share_timestamps(self, problem):
        group = tuple(canonical_links(problem)[:2])
        config = TimelineConfig(
            horizon=2000.0,
            link_mtbf=None,
            srlg_groups=(group,),
            srlg_mtbf=50.0,
            srlg_mttr=5.0,
        )
        timeline = generate_timeline(problem, config, seed=2)
        assert timeline.events
        by_time: dict[float, set] = {}
        for e in timeline.failures:
            by_time.setdefault(e.time, set()).add((e.fault.u, e.fault.v))
        for members in by_time.values():
            assert members == set(group)

    def test_node_processes_respect_exclude(self, problem):
        nodes = sorted(problem.network.nodes, key=repr)
        config = TimelineConfig(
            horizon=5000.0,
            link_mtbf=None,
            node_mtbf=20.0,
            node_mttr=2.0,
            exclude_nodes=(nodes[0],),
        )
        timeline = generate_timeline(problem, config, seed=0)
        failed = {e.fault.node for e in timeline.failures}
        assert failed  # other nodes do fail...
        assert nodes[0] not in failed  # ...the excluded one never does

    def test_srlg_missing_link_rejected(self, problem):
        config = TimelineConfig(srlg_groups=((("nope", "nada"),),))
        with pytest.raises(InvalidProblemError):
            generate_timeline(problem, config)

    def test_none_mtbf_disables_class(self, problem):
        config = TimelineConfig(horizon=1000.0, link_mtbf=None, node_mtbf=None)
        assert generate_timeline(problem, config, seed=0).events == ()


class TestConfigValidation:
    @pytest.mark.parametrize(
        "kwargs",
        [
            {"horizon": 0.0},
            {"link_mtbf": -1.0},
            {"link_mttr": 0.0},
            {"node_mttr": -2.0},
            {"flap_probability": 1.5},
            {"flap_mttr": 0.0},
            {"srlg_mtbf": 0.0},
        ],
    )
    def test_bad_values_rejected(self, kwargs):
        with pytest.raises(InvalidProblemError):
            TimelineConfig(**kwargs).validate()


class TestFromScenario:
    def test_embeds_permanent_failures_at_zero(self):
        scenario = FailureScenario(
            "cut", (LinkFailure("a", "b"), NodeFailure("c"))
        )
        timeline = timeline_from_scenario(scenario, horizon=3.0)
        assert timeline.name == "cut"
        assert timeline.horizon == 3.0
        assert all(isinstance(e, FailureEvent) for e in timeline.events)
        assert all(e.time == 0.0 for e in timeline.events)
        assert tuple(e.fault for e in timeline.events) == scenario.faults
        assert not any(isinstance(e, RepairEvent) for e in timeline.events)

    def test_bad_horizon_rejected(self):
        with pytest.raises(InvalidProblemError):
            timeline_from_scenario(FailureScenario("x", ()), horizon=0.0)
