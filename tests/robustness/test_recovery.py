"""Graceful-degradation recovery: the ISSUE's acceptance suite.

For EVERY single-link failure on the gadget and on Deltacom, recovery must
serve all servable demand — unserved fraction is 0 exactly when each
request still has reachable replicas covering it — and the recovered cost
never beats the healthy RNR cost while everything stays served.
"""

import networkx as nx
import pytest

from repro.core import route_to_nearest_replica, routing_cost
from repro.core.context import SolverContext
from repro.core.solution import Placement
from repro.experiments import ScenarioConfig, build_scenario
from repro.experiments.algorithms import greedy
from repro.robustness import (
    FailureScenario,
    LinkFailure,
    NodeFailure,
    apply_failure,
    recover,
    repair_placement,
    single_link_failures,
    surviving_placement,
)
from repro.robustness.degraded import degraded_context
from repro.robustness.demo import gadget_placement, gadget_problem

_TOL = 1e-6


def _servable(degraded, placement):
    """Requests whose surviving reachable replicas (incl. pins) cover them."""
    problem = degraded.problem
    graph = problem.network.graph
    holders = {v for v, _i in placement} | {v for v, _i in problem.pinned}
    reach = {
        v: nx.descendants(graph, v) | {v} for v in holders if v in graph
    }
    servable = set()
    for item, s in problem.demand:
        fractions = {}
        for v in placement.holders(item):
            fractions[v] = max(fractions.get(v, 0.0), placement[(v, item)])
        for v in problem.pinned_holders(item):
            fractions[v] = 1.0
        covered = sum(
            f for v, f in fractions.items() if s in reach.get(v, ())
        )
        if covered >= 1 - _TOL:
            servable.add((item, s))
    return servable


def _assert_survivability(problem, placement):
    healthy = route_to_nearest_replica(problem, placement)
    healthy_cost = routing_cost(problem, healthy, demand=problem.demand)
    scenarios = single_link_failures(problem)
    assert scenarios, "topology has no links?"
    for scenario in scenarios:
        degraded = apply_failure(problem, scenario)
        result = recover(degraded, placement)
        survivor, _ = surviving_placement(placement, degraded)
        servable = _servable(degraded, survivor)
        stranded = set(result.stranded)
        # Exactly the unservable requests are stranded...
        assert stranded == set(degraded.problem.demand) - servable, scenario.name
        # ...so unserved fraction is 0 iff every replica stayed reachable.
        if len(servable) == len(degraded.problem.demand) and not degraded.lost_demand:
            assert result.unserved_fraction <= _TOL, scenario.name
            cost = routing_cost(
                degraded.problem, result.routing, demand=degraded.problem.demand
            )
            # Detouring around a failure never beats the healthy routing.
            assert cost >= healthy_cost - _TOL, scenario.name
        else:
            assert result.unserved_fraction > _TOL, scenario.name


def test_every_single_link_failure_on_gadget():
    _assert_survivability(gadget_problem(), gadget_placement())


def test_every_single_link_failure_on_deltacom():
    scenario = build_scenario(
        ScenarioConfig(
            topology="deltacom",
            num_videos=2,
            link_capacity_fraction=None,
            num_edge_nodes=4,
            seed=0,
        )
    )
    _assert_survivability(scenario.problem, greedy(scenario).placement)


def test_double_cut_strands_all_demand():
    problem = gadget_problem()
    degraded = apply_failure(
        problem,
        FailureScenario(
            "cut-both", (LinkFailure("v1", "s"), LinkFailure("v2", "s"))
        ),
    )
    result = recover(degraded, gadget_placement())
    assert result.unserved_fraction == pytest.approx(1.0)
    assert set(result.stranded) == set(degraded.problem.demand)
    assert all(frac == pytest.approx(1.0) for frac in result.stranded.values())
    # Partial mode still returns a routing object (with empty path lists).
    assert all(not paths for paths in result.routing.paths.values())


def test_node_failure_drops_entries_and_reroutes():
    problem = gadget_problem()
    degraded = apply_failure(problem, FailureScenario("f", (NodeFailure("v1"),)))
    result = recover(degraded, gadget_placement())
    assert result.dropped == [("v1", "item1")]
    assert ("v1", "item1") not in result.placement
    # item1 now comes from the pinned origin through v2.
    [pf] = result.routing.paths[("item1", "s")]
    assert pf.path == ("vs", "v2", "s")
    assert result.unserved_fraction <= _TOL


class TestRepair:
    def _lost_copy(self):
        """v1 (holding the only cached copy of item1) fails; v2 is empty."""
        problem = gadget_problem()
        placement = Placement({("v1", "item1"): 1.0})
        degraded = apply_failure(
            problem, FailureScenario("f", (NodeFailure("v1"),))
        )
        return degraded, placement

    def test_repair_refills_residual_space(self):
        degraded, placement = self._lost_copy()
        result = recover(degraded, placement, repair=True)
        assert ("v2", "item1") in result.repaired
        assert result.placement[("v2", "item1")] == 1.0
        # The repaired copy serves the hot item locally instead of from vs.
        [pf] = result.routing.paths[("item1", "s")]
        assert pf.path == ("v2", "s")

    def test_repair_beats_no_repair_on_cost(self):
        degraded, placement = self._lost_copy()
        plain = recover(degraded, placement.copy())
        repaired = recover(degraded, placement, repair=True)
        problem = degraded.problem
        assert routing_cost(
            problem, repaired.routing, demand=problem.demand
        ) < routing_cost(problem, plain.routing, demand=problem.demand)

    def test_max_repairs_zero_disables_repair(self):
        degraded, placement = self._lost_copy()
        result = recover(degraded, placement, repair=True, max_repairs=0)
        assert result.repaired == []

    def test_repair_respects_capacity(self):
        # Both caches full -> nothing to repair even though v1's copy is gone.
        problem = gadget_problem()
        degraded = apply_failure(
            problem, FailureScenario("f", (NodeFailure("v1"),))
        )
        placement = Placement({("v1", "item1"): 1.0, ("v2", "item2"): 1.0})
        result = recover(degraded, placement, repair=True)
        assert result.repaired == []
        assert result.unserved_fraction <= _TOL  # vs still serves item1

    def test_repair_placement_is_deterministic(self):
        degraded, _ = self._lost_copy()
        problem = degraded.problem
        runs = []
        for _ in range(2):
            placement = Placement()
            runs.append(list(repair_placement(problem, placement)))
        assert runs[0] == runs[1]


class TestWorstCases:
    def test_all_replicas_and_origin_dead(self):
        # Every holder (caches v1/v2 and the pinned origin vs) dies: nothing
        # is servable, and recover must say so instead of raising.
        problem = gadget_problem()
        degraded = apply_failure(
            problem,
            FailureScenario(
                "blackout",
                (NodeFailure("v1"), NodeFailure("v2"), NodeFailure("vs")),
            ),
        )
        result = recover(degraded, gadget_placement())
        assert result.unserved_fraction == pytest.approx(1.0)
        assert result.routing.paths == {} or all(
            not pfs for pfs in result.routing.paths.values()
        )
        stranded_requests = set(result.stranded)
        assert stranded_requests == set(problem.demand)
        assert all(v == pytest.approx(1.0) for v in result.stranded.values())

    def test_all_replicas_and_origin_dead_with_context(self):
        problem = gadget_problem()
        degraded = apply_failure(
            problem,
            FailureScenario(
                "blackout",
                (NodeFailure("v1"), NodeFailure("v2"), NodeFailure("vs")),
            ),
        )
        ctx = degraded_context(SolverContext.from_problem(problem), degraded)
        plain = recover(degraded, gadget_placement())
        via_ctx = recover(degraded, gadget_placement(), context=ctx)
        assert via_ctx.unserved_fraction == plain.unserved_fraction == 1.0
        assert via_ctx.stranded == plain.stranded

    def test_requester_node_failure_moves_demand_to_lost(self):
        problem = gadget_problem()
        degraded = apply_failure(
            problem, FailureScenario("f", (NodeFailure("s"),))
        )
        result = recover(degraded, gadget_placement())
        # The dead requester's demand is lost, not stranded: the degraded
        # instance no longer contains it, but it still counts as unserved.
        assert result.stranded == {}
        assert set(degraded.lost_demand) == set(problem.demand)
        assert result.unserved_fraction == pytest.approx(1.0)

    def test_repair_with_all_caches_dead_is_a_noop(self):
        # Both caches die: the only surviving cache node is the pinned
        # origin, which repair must skip (pins are not repair slots), and
        # the client s (fed only via v1/v2) is isolated outright.
        problem = gadget_problem()
        degraded = apply_failure(
            problem,
            FailureScenario("f", (NodeFailure("v1"), NodeFailure("v2"))),
        )
        result = recover(degraded, gadget_placement(), repair=True)
        assert result.repaired == []
        assert sorted(result.dropped) == [("v1", "item1"), ("v2", "item2")]
        assert result.unserved_fraction == pytest.approx(1.0)
