"""Fault injection: degraded instances, enumerators, seeded samplers."""

import pytest

from repro.exceptions import InvalidProblemError
from repro.robustness import (
    CapacityDegradation,
    FailureScenario,
    LinkFailure,
    NodeFailure,
    apply_failure,
    k_link_failures,
    sample_failures,
    single_link_failures,
    single_node_failures,
)
from repro.robustness.demo import gadget_problem


class TestLinkFailure:
    def test_removes_both_directions_by_default(self):
        problem = gadget_problem()
        # The gadget's links are one-directional; add a symmetric pair.
        problem.network.graph.add_edge("s", "v1", cost=1.0, capacity=1.0)
        degraded = apply_failure(
            problem,
            FailureScenario("f", (LinkFailure("v1", "s"),)),
        )
        assert not degraded.problem.network.has_edge("v1", "s")
        assert not degraded.problem.network.has_edge("s", "v1")
        assert ("v1", "s") in degraded.failed_links
        assert ("s", "v1") in degraded.failed_links

    def test_one_direction_only(self):
        problem = gadget_problem()
        problem.network.graph.add_edge("s", "v1", cost=1.0, capacity=1.0)
        degraded = apply_failure(
            problem,
            FailureScenario("f", (LinkFailure("v1", "s", both_directions=False),)),
        )
        assert not degraded.problem.network.has_edge("v1", "s")
        assert degraded.problem.network.has_edge("s", "v1")

    def test_missing_link_raises(self):
        problem = gadget_problem()
        with pytest.raises(InvalidProblemError, match="missing"):
            apply_failure(
                problem, FailureScenario("f", (LinkFailure("s", "vs"),))
            )

    def test_original_instance_untouched(self):
        problem = gadget_problem()
        apply_failure(problem, FailureScenario("f", (LinkFailure("v1", "s"),)))
        assert problem.network.has_edge("v1", "s")


class TestNodeFailure:
    def test_removes_node_cache_and_pins(self):
        problem = gadget_problem()
        degraded = apply_failure(
            problem, FailureScenario("f", (NodeFailure("vs"),))
        )
        surviving = degraded.problem
        assert "vs" not in surviving.network
        assert "vs" not in surviving.network.cache_capacities
        assert not surviving.pinned  # vs pinned the whole catalog
        assert degraded.failed_nodes == frozenset({"vs"})
        # Both origin links die with the node.
        assert ("vs", "v1") in degraded.failed_links
        assert ("vs", "v2") in degraded.failed_links

    def test_requester_death_moves_demand_to_lost(self):
        problem = gadget_problem(lam=10.0, eps=0.01)
        degraded = apply_failure(
            problem, FailureScenario("f", (NodeFailure("s"),))
        )
        assert degraded.problem.demand == {}
        assert degraded.lost_demand == {("item1", "s"): 10.0, ("item2", "s"): 0.01}
        assert degraded.total_original_demand == pytest.approx(10.01)


class TestCapacityDegradation:
    def test_scales_capacities(self):
        problem = gadget_problem(lam=10.0)
        degraded = apply_failure(
            problem, FailureScenario("f", (CapacityDegradation(0.5),))
        )
        assert degraded.problem.network.capacity("vs", "v1") == pytest.approx(5.0)
        assert problem.network.capacity("vs", "v1") == pytest.approx(10.0)

    def test_selective_links(self):
        problem = gadget_problem(lam=10.0)
        degraded = apply_failure(
            problem,
            FailureScenario("f", (CapacityDegradation(0.25, links=(("v1", "s"),)),)),
        )
        assert degraded.problem.network.capacity("v1", "s") == pytest.approx(2.5)
        assert degraded.problem.network.capacity("v2", "s") == pytest.approx(10.0)

    @pytest.mark.parametrize("factor", [0.0, -1.0, 1.5])
    def test_bad_factor_rejected(self, factor):
        problem = gadget_problem()
        with pytest.raises(InvalidProblemError, match="factor"):
            apply_failure(
                problem, FailureScenario("f", (CapacityDegradation(factor),))
            )


class TestEnumerators:
    def test_single_link_failures_cover_every_undirected_link(self):
        problem = gadget_problem()
        scenarios = single_link_failures(problem)
        assert len(scenarios) == 4  # the gadget has 4 one-directional links
        assert len({s.name for s in scenarios}) == 4

    def test_k_link_failures_are_combinations(self):
        problem = gadget_problem()
        assert len(k_link_failures(problem, 2)) == 6  # C(4, 2)
        with pytest.raises(InvalidProblemError):
            k_link_failures(problem, 0)

    def test_single_node_failures_respect_exclude(self):
        problem = gadget_problem()
        names = {s.name for s in single_node_failures(problem, exclude=("s",))}
        assert names == {"node:'v1'", "node:'v2'", "node:'vs'"}

    def test_deterministic_order(self):
        problem = gadget_problem()
        first = [s.name for s in single_link_failures(problem)]
        second = [s.name for s in single_link_failures(problem)]
        assert first == second == sorted(first)


class TestSampler:
    def test_same_seed_same_scenarios(self):
        problem = gadget_problem()
        a = sample_failures(problem, n_scenarios=5, links_per_scenario=2, seed=7)
        b = sample_failures(problem, n_scenarios=5, links_per_scenario=2, seed=7)
        assert a == b

    def test_different_seed_differs(self):
        problem = gadget_problem()
        a = sample_failures(problem, n_scenarios=8, links_per_scenario=2, seed=1)
        b = sample_failures(problem, n_scenarios=8, links_per_scenario=2, seed=2)
        assert a != b

    def test_mixed_link_and_node_faults(self):
        problem = gadget_problem()
        scenarios = sample_failures(
            problem,
            n_scenarios=3,
            links_per_scenario=1,
            nodes_per_scenario=1,
            exclude_nodes=("s", "vs"),
            seed=0,
        )
        for s in scenarios:
            kinds = [type(f).__name__ for f in s.faults]
            assert kinds == ["LinkFailure", "NodeFailure"]
            apply_failure(problem, s)  # every sampled scenario is applicable

    def test_oversized_request_rejected(self):
        problem = gadget_problem()
        with pytest.raises(InvalidProblemError):
            sample_failures(problem, n_scenarios=1, links_per_scenario=99)


class TestUniqueSampler:
    def test_unique_yields_distinct_fault_sets(self):
        problem = gadget_problem()
        scenarios = sample_failures(
            problem, n_scenarios=4, links_per_scenario=1, seed=0, unique=True
        )
        fault_sets = [frozenset(s.faults) for s in scenarios]
        assert len(set(fault_sets)) == 4  # the gadget has exactly 4 links

    def test_default_stream_unchanged_by_unique_flag(self):
        # unique=False must preserve the historical duplicated stream
        # bit-for-bit: the flag only filters, it never reorders draws.
        problem = gadget_problem()
        legacy = sample_failures(problem, n_scenarios=6, seed=5)
        again = sample_failures(problem, n_scenarios=6, seed=5, unique=False)
        assert legacy == again
        # With 4 links and 6 draws the pigeonhole guarantees duplicates.
        assert len({frozenset(s.faults) for s in legacy}) < len(legacy)

    def test_unique_is_seed_deterministic(self):
        problem = gadget_problem()
        a = sample_failures(problem, n_scenarios=3, seed=9, unique=True)
        b = sample_failures(problem, n_scenarios=3, seed=9, unique=True)
        assert a == b

    def test_unique_exhausted_pool_raises(self):
        problem = gadget_problem()
        with pytest.raises(InvalidProblemError, match="unique"):
            sample_failures(
                problem, n_scenarios=5, links_per_scenario=1, seed=0, unique=True
            )
