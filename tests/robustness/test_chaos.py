"""Chaos harness: the ISSUE's acceptance budget plus checker self-tests."""

import networkx as nx
import numpy as np
import pytest

from repro.robustness import (
    ChaosConfig,
    InvariantChecker,
    RepairEvent,
    LinkFailure,
    run_chaos,
)
from repro.robustness.chaos import random_placement, random_problem


class TestAcceptanceBudget:
    def test_default_budget_is_clean(self):
        # ISSUE acceptance: >= 200 seeded events across >= 5 campaigns with
        # zero invariant violations (static parity included).
        report = run_chaos(ChaosConfig())
        assert len(report.results) >= 5
        assert report.total_events >= 200
        assert report.total_violations == 0
        assert report.ok
        assert all(r.static_parity_ok for r in report.results)
        summary = report.summary()
        assert summary["total_events"] == report.total_events
        assert 0.0 <= summary["mean_availability"] <= 1.0
        assert "0 violations" in report.format()

    def test_same_seed_reproduces_exactly(self):
        config = ChaosConfig(campaigns=2, min_nodes=6, max_nodes=8, horizon=30.0,
                             min_events=20)
        a = run_chaos(config)
        b = run_chaos(config)
        assert a.results == b.results
        assert a.total_events > 0


class TestRandomInstances:
    def test_random_problem_deterministic_and_connected(self):
        a = random_problem(np.random.default_rng(7))
        b = random_problem(np.random.default_rng(7))
        assert sorted(a.network.graph.edges(data=True)) == sorted(
            b.network.graph.edges(data=True)
        )
        assert a.demand == b.demand
        assert nx.is_strongly_connected(a.network.graph)
        # The origin pins the full catalog.
        assert {(v, i) for (v, i) in a.pinned} == {("n0", i) for i in a.catalog}

    def test_random_placement_respects_capacity(self):
        rng = np.random.default_rng(3)
        problem = random_problem(rng)
        placement = random_placement(rng, problem)
        for v in problem.network.cache_nodes():
            used = sum(
                problem.size_of(i) for (node, i) in placement if node == v
            )
            assert used <= problem.network.cache_capacity(v) + 1e-9


class _StubController:
    """Just enough surface for the event-phase invariant checks."""

    def __init__(self, problem, served):
        self.problem = problem
        self._served = served

    def served_rate(self):
        return self._served


class TestCheckerDetectsViolations:
    @pytest.fixture
    def problem(self):
        return random_problem(np.random.default_rng(0))

    def test_monotone_repair_violation_is_caught(self, problem):
        checker = InvariantChecker()
        repair = RepairEvent(5.0, LinkFailure("n0", "n1"))
        checker("event", 4.0, _StubController(problem, served=2.0), None)
        checker("event", 5.0, _StubController(problem, served=1.0), repair)
        assert len(checker.violations) == 1
        assert "monotone" in checker.violations[0]

    def test_conservation_violation_is_caught(self, problem):
        checker = InvariantChecker()
        over = problem.total_demand * 2.0
        checker("event", 1.0, _StubController(problem, served=over), None)
        assert len(checker.violations) == 1
        assert "conservation" in checker.violations[0]

    def test_strict_mode_raises_immediately(self, problem):
        checker = InvariantChecker(strict=True)
        over = problem.total_demand * 2.0
        with pytest.raises(AssertionError, match="conservation"):
            checker("event", 1.0, _StubController(problem, served=over), None)

    def test_clean_observation_records_nothing(self, problem):
        checker = InvariantChecker()
        checker("event", 1.0, _StubController(problem, served=0.0), None)
        checker("end", 2.0, _StubController(problem, served=0.0), None)
        assert checker.violations == []


class TestStreamingAcceptanceBudget:
    def test_default_budget_is_clean(self):
        # ISSUE acceptance: chaos campaigns fuzzing timeline x workload
        # regime x >= 2 reactive policies with zero violations.
        from repro.robustness import StreamingChaosConfig, run_streaming_chaos

        report = run_streaming_chaos(
            StreamingChaosConfig(requests=8_000), raise_on_violation=True
        )
        assert report.ok
        assert report.total_violations == 0
        assert len(report.results) >= 4
        summary = report.summary()
        assert summary["total_events"] >= 4 * 20
        assert summary["total_generated"] > 0
        assert summary["total_served"] <= summary["total_generated"]
        policies = {name for r in report.results for name in r.strategies}
        assert len(policies) >= 2
        regimes = {r.regime for r in report.results}
        assert regimes  # every campaign labels its (possibly empty) regime
        assert "0 violations" in report.format()

    def test_same_seed_reproduces_exactly(self):
        from repro.robustness import StreamingChaosConfig, run_streaming_chaos

        config = StreamingChaosConfig(
            campaigns=2, requests=4_000, min_nodes=6, max_nodes=7, seed=5
        )
        a = run_streaming_chaos(config)
        b = run_streaming_chaos(config)
        assert a.ok and b.ok
        assert [
            (r.events, r.segments, r.generated, r.served, r.regime)
            for r in a.results
        ] == [
            (r.events, r.segments, r.generated, r.served, r.regime)
            for r in b.results
        ]


class TestStreamingInvariantChecker:
    """check_streaming_invariants flags doctored reports."""

    @pytest.fixture
    def clean_report(self):
        from repro.robustness import (
            TimelineConfig,
            generate_timeline,
            replay_timeline_streaming,
        )
        from repro.serving import ServingConfig

        rng = np.random.default_rng(1)
        problem = random_problem(rng, n_nodes=7, n_items=3)
        placement = random_placement(rng, problem)
        timeline = generate_timeline(
            problem,
            TimelineConfig(horizon=20.0, link_mtbf=10.0, link_mttr=3.0),
            seed=2,
        )
        rate_scale = 5_000 / (problem.total_demand * timeline.horizon)
        return replay_timeline_streaming(
            problem, placement, timeline,
            config=ServingConfig(horizon=timeline.horizon),
            rate_scale=rate_scale,
        )

    def test_clean_report_passes(self, clean_report):
        from repro.robustness import check_streaming_invariants

        assert check_streaming_invariants(clean_report) == []

    def test_overserving_type_is_caught(self, clean_report):
        from repro.robustness import check_streaming_invariants

        acc = clean_report.segments[0].accumulator
        acc.served = acc.generated + 1
        assert any(
            "served more" in v or "conservation" in v
            for v in check_streaming_invariants(clean_report)
        )

    def test_global_overserving_is_caught(self, clean_report):
        from repro.robustness import check_streaming_invariants

        clean_report.per_type_served = clean_report.per_type_generated + 1
        assert any(
            "served more" in v for v in check_streaming_invariants(clean_report)
        )

    def test_six_sigma_outlier_is_caught(self, clean_report):
        from repro.robustness import check_streaming_invariants

        clean_report.delivered_cost += 100.0 * (
            1.0 + np.sqrt(clean_report.cost_variance)
        )
        assert any(
            "6 sigma" in v for v in check_streaming_invariants(clean_report)
        )
