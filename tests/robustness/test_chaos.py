"""Chaos harness: the ISSUE's acceptance budget plus checker self-tests."""

import networkx as nx
import numpy as np
import pytest

from repro.robustness import (
    ChaosConfig,
    InvariantChecker,
    RepairEvent,
    LinkFailure,
    run_chaos,
)
from repro.robustness.chaos import random_placement, random_problem


class TestAcceptanceBudget:
    def test_default_budget_is_clean(self):
        # ISSUE acceptance: >= 200 seeded events across >= 5 campaigns with
        # zero invariant violations (static parity included).
        report = run_chaos(ChaosConfig())
        assert len(report.results) >= 5
        assert report.total_events >= 200
        assert report.total_violations == 0
        assert report.ok
        assert all(r.static_parity_ok for r in report.results)
        summary = report.summary()
        assert summary["total_events"] == report.total_events
        assert 0.0 <= summary["mean_availability"] <= 1.0
        assert "0 violations" in report.format()

    def test_same_seed_reproduces_exactly(self):
        config = ChaosConfig(campaigns=2, min_nodes=6, max_nodes=8, horizon=30.0,
                             min_events=20)
        a = run_chaos(config)
        b = run_chaos(config)
        assert a.results == b.results
        assert a.total_events > 0


class TestRandomInstances:
    def test_random_problem_deterministic_and_connected(self):
        a = random_problem(np.random.default_rng(7))
        b = random_problem(np.random.default_rng(7))
        assert sorted(a.network.graph.edges(data=True)) == sorted(
            b.network.graph.edges(data=True)
        )
        assert a.demand == b.demand
        assert nx.is_strongly_connected(a.network.graph)
        # The origin pins the full catalog.
        assert {(v, i) for (v, i) in a.pinned} == {("n0", i) for i in a.catalog}

    def test_random_placement_respects_capacity(self):
        rng = np.random.default_rng(3)
        problem = random_problem(rng)
        placement = random_placement(rng, problem)
        for v in problem.network.cache_nodes():
            used = sum(
                problem.size_of(i) for (node, i) in placement if node == v
            )
            assert used <= problem.network.cache_capacity(v) + 1e-9


class _StubController:
    """Just enough surface for the event-phase invariant checks."""

    def __init__(self, problem, served):
        self.problem = problem
        self._served = served

    def served_rate(self):
        return self._served


class TestCheckerDetectsViolations:
    @pytest.fixture
    def problem(self):
        return random_problem(np.random.default_rng(0))

    def test_monotone_repair_violation_is_caught(self, problem):
        checker = InvariantChecker()
        repair = RepairEvent(5.0, LinkFailure("n0", "n1"))
        checker("event", 4.0, _StubController(problem, served=2.0), None)
        checker("event", 5.0, _StubController(problem, served=1.0), repair)
        assert len(checker.violations) == 1
        assert "monotone" in checker.violations[0]

    def test_conservation_violation_is_caught(self, problem):
        checker = InvariantChecker()
        over = problem.total_demand * 2.0
        checker("event", 1.0, _StubController(problem, served=over), None)
        assert len(checker.violations) == 1
        assert "conservation" in checker.violations[0]

    def test_strict_mode_raises_immediately(self, problem):
        checker = InvariantChecker(strict=True)
        over = problem.total_demand * 2.0
        with pytest.raises(AssertionError, match="conservation"):
            checker("event", 1.0, _StubController(problem, served=over), None)

    def test_clean_observation_records_nothing(self, problem):
        checker = InvariantChecker()
        checker("event", 1.0, _StubController(problem, served=0.0), None)
        checker("end", 2.0, _StubController(problem, served=0.0), None)
        assert checker.violations == []
