"""Tests for Gaussian-process regression and the demand predictor."""

import numpy as np
import pytest

from repro.exceptions import PredictionError
from repro.prediction import RBF, GaussianProcessRegressor, White
from repro.prediction.gpr import DemandPredictor
from repro.workload import TABLE1_VIDEOS, TraceConfig, synthesize_trace


class TestGPR:
    def test_interpolates_smooth_function(self):
        x = np.linspace(0, 10, 30)
        y = np.sin(x)
        gpr = GaussianProcessRegressor(
            RBF(1.0) + White(1e-6), n_restarts=0
        ).fit(x, y)
        pred = gpr.predict(x)
        assert np.max(np.abs(pred - y)) < 0.05

    def test_extrapolates_periodic_signal(self):
        x = np.arange(0, 96, dtype=float)
        y = 5.0 + 2.0 * np.sin(2 * np.pi * x / 24.0)
        gpr = GaussianProcessRegressor(n_restarts=1).fit(x, y)
        x_star = np.arange(96, 120, dtype=float)
        truth = 5.0 + 2.0 * np.sin(2 * np.pi * x_star / 24.0)
        pred = gpr.predict(x_star)
        assert np.mean(np.abs(pred - truth)) < 0.5

    def test_predict_with_std(self):
        x = np.arange(0, 20, dtype=float)
        y = np.cos(x / 3)
        gpr = GaussianProcessRegressor(RBF(2.0) + White(1e-4), n_restarts=0).fit(x, y)
        mean, std = gpr.predict(np.array([5.0, 100.0]), return_std=True)
        assert std[1] > std[0]  # far from data -> more uncertain

    def test_lml_improves_with_fit(self):
        x = np.arange(0, 50, dtype=float)
        y = np.sin(2 * np.pi * x / 24.0)
        gpr = GaussianProcessRegressor(n_restarts=0)
        gpr._x = x[:, None]
        gpr._y_train = (y - y.mean()) / y.std()
        before = gpr.log_marginal_likelihood()
        gpr.fit(x, y)
        after = gpr.log_marginal_likelihood()
        assert after >= before - 1e-6

    def test_predict_before_fit_raises(self):
        with pytest.raises(PredictionError):
            GaussianProcessRegressor().predict(np.array([1.0]))

    def test_mismatched_lengths_raise(self):
        with pytest.raises(PredictionError):
            GaussianProcessRegressor().fit(np.arange(3.0), np.arange(4.0))

    def test_too_few_points_raise(self):
        with pytest.raises(PredictionError):
            GaussianProcessRegressor().fit(np.array([1.0]), np.array([2.0]))

    def test_normalization_recovers_scale(self):
        x = np.arange(0, 30, dtype=float)
        y = 1e6 + 1e5 * np.sin(x / 4)
        gpr = GaussianProcessRegressor(n_restarts=0).fit(x, y)
        pred = gpr.predict(x)
        assert np.mean(np.abs(pred - y)) / 1e5 < 0.5


class TestDemandPredictor:
    def test_predicts_trace_within_tolerance(self):
        cfg = TraceConfig(seed=0, noise_sigma=0.05)
        trace = synthesize_trace(config=cfg)
        series = trace.series(TABLE1_VIDEOS[0].video_id)
        predictor = DemandPredictor(
            train_hours=550, batch_hours=5, history_window=120, n_restarts=0
        )
        pred = predictor.predict_series(series, eval_hours=10)
        truth = series[550:560]
        rel = np.abs(pred - truth) / truth
        assert rel.mean() < 0.35  # realistic, imperfect prediction

    def test_output_positive(self):
        cfg = TraceConfig(seed=3)
        trace = synthesize_trace(config=cfg)
        series = trace.series(TABLE1_VIDEOS[5].video_id)
        pred = DemandPredictor(
            train_hours=550, history_window=100, n_restarts=0
        ).predict_series(series, eval_hours=5)
        assert (pred > 0).all()

    def test_series_too_short(self):
        with pytest.raises(PredictionError):
            DemandPredictor(train_hours=550).predict_series(
                np.ones(100), eval_hours=10
            )

    def test_batching_matches_requested_length(self):
        cfg = TraceConfig(seed=1)
        trace = synthesize_trace(config=cfg)
        series = trace.series(TABLE1_VIDEOS[1].video_id)
        pred = DemandPredictor(
            train_hours=550, batch_hours=5, history_window=80, n_restarts=0
        ).predict_series(series, eval_hours=7)
        assert len(pred) == 7

    def test_invalid_train_hours(self):
        with pytest.raises(PredictionError):
            DemandPredictor(train_hours=1)


class TestLMLSideEffects:
    """Satellite regression: exploratory LML evaluations must not mutate
    the kernel, and near-singular fits must not crash."""

    def test_explicit_theta_restores_kernel(self):
        x = np.arange(0, 20, dtype=float)
        y = np.sin(x / 3)
        gpr = GaussianProcessRegressor(RBF(2.0) + White(1e-4), n_restarts=0)
        gpr.fit(x, y)
        before = gpr.kernel.theta.copy()
        probe = before + 0.37
        value = gpr.log_marginal_likelihood(probe)
        assert np.allclose(gpr.kernel.theta, before)
        assert np.isfinite(value) or value == -np.inf

    def test_explicit_theta_matches_direct_evaluation(self):
        x = np.arange(0, 15, dtype=float)
        y = np.cos(x / 2)
        gpr = GaussianProcessRegressor(RBF(1.5) + White(1e-4), n_restarts=0)
        gpr.fit(x, y)
        probe = gpr.kernel.theta + 0.2
        via_arg = gpr.log_marginal_likelihood(probe)
        gpr.kernel.theta = probe
        direct = gpr.log_marginal_likelihood()
        assert via_arg == pytest.approx(direct)

    def test_predictions_unchanged_by_exploration(self):
        x = np.arange(0, 25, dtype=float)
        y = np.sin(x / 4)
        gpr = GaussianProcessRegressor(RBF(2.0) + White(1e-4), n_restarts=0)
        gpr.fit(x, y)
        ref = gpr.predict(x)
        for shift in (-1.0, 0.5, 2.0):
            gpr.log_marginal_likelihood(gpr.kernel.theta + shift)
        assert np.allclose(gpr.predict(x), ref)


class TestStableCholesky:
    def test_escalates_jitter_on_near_singular_matrix(self):
        from repro.prediction.gpr import _stable_cholesky

        # Rank-1 matrix with a small negative eigenvalue: the base jitter
        # (1e-10) cannot rescue it, escalation can.
        k = np.ones((5, 5)) - 1e-6 * np.eye(5)
        chol = _stable_cholesky(k)
        rebuilt = chol @ chol.T
        assert np.allclose(rebuilt, k, atol=1e-2)

    def test_raises_beyond_jitter_ceiling(self):
        from repro.prediction.gpr import _stable_cholesky

        with pytest.raises(PredictionError):
            _stable_cholesky(-np.eye(3))

    def test_fit_survives_duplicate_inputs(self):
        # Duplicated inputs without a white-noise term drive the optimum
        # toward a singular kernel; fit() must not raise LinAlgError.
        x = np.repeat(np.arange(0, 8, dtype=float), 3)
        y = np.repeat(np.array([0.0, 1.0, 0.5, 0.2, 0.9, 0.1, 0.7, 0.3]), 3)
        gpr = GaussianProcessRegressor(RBF(1.0), n_restarts=0)
        gpr.fit(x, y)
        assert np.isfinite(gpr.predict(np.array([4.0]))).all()
