"""Tests for the GP kernel algebra."""

import numpy as np
import pytest

from repro.prediction import RBF, Constant, Periodic, White, paper_kernel


def is_psd(matrix, tol=1e-8):
    eigenvalues = np.linalg.eigvalsh((matrix + matrix.T) / 2)
    return eigenvalues.min() > -tol


class TestRBF:
    def test_diagonal_is_one(self):
        x = np.arange(5.0)
        k = RBF(2.0)(x)
        assert np.allclose(np.diag(k), 1.0)

    def test_decay_with_distance(self):
        k = RBF(1.0)(np.array([0.0, 1.0, 5.0]))
        assert k[0, 1] > k[0, 2]

    def test_psd(self):
        x = np.linspace(0, 10, 20)
        assert is_psd(RBF(1.5)(x))

    def test_theta_roundtrip(self):
        k = RBF(3.0)
        k.theta = np.array([np.log(7.0)])
        assert k.length_scale == pytest.approx(7.0)

    def test_cross_covariance_shape(self):
        k = RBF(1.0)(np.arange(4.0), np.arange(6.0))
        assert k.shape == (4, 6)


class TestPeriodic:
    def test_periodicity(self):
        k = Periodic(1.0, period=24.0)
        x = np.array([0.0, 24.0, 48.0, 12.0])
        cov = k(x)
        assert cov[0, 1] == pytest.approx(1.0)
        assert cov[0, 2] == pytest.approx(1.0)
        assert cov[0, 3] < 1.0

    def test_theta_roundtrip(self):
        k = Periodic(2.0, period=12.0)
        assert np.allclose(k.theta, [np.log(2.0), np.log(12.0)])
        k.theta = np.array([0.0, np.log(24.0)])
        assert k.period == pytest.approx(24.0)

    def test_psd(self):
        x = np.linspace(0, 100, 25)
        assert is_psd(Periodic(1.0, 24.0)(x))


class TestWhite:
    def test_identity_on_train(self):
        k = White(0.5)(np.arange(3.0))
        assert np.allclose(k, 0.5 * np.eye(3))

    def test_zero_on_cross(self):
        k = White(0.5)(np.arange(3.0), np.arange(4.0))
        assert np.allclose(k, 0.0)


class TestComposition:
    def test_sum(self):
        x = np.arange(4.0)
        k = RBF(1.0) + White(0.1)
        assert np.allclose(k(x), RBF(1.0)(x) + White(0.1)(x))

    def test_product(self):
        x = np.arange(4.0)
        k = Constant(2.0) * RBF(1.0)
        assert np.allclose(k(x), 2.0 * RBF(1.0)(x))

    def test_composite_theta_concatenates(self):
        k = Constant(2.0) * (RBF(1.0) + Periodic(1.0, 24.0)) + White(0.1)
        assert len(k.theta) == 5
        assert len(k.bounds) == 5

    def test_composite_theta_setter(self):
        k = RBF(1.0) + White(1.0)
        k.theta = np.array([np.log(4.0), np.log(0.25)])
        assert k.left.length_scale == pytest.approx(4.0)
        assert k.right.noise_level == pytest.approx(0.25)

    def test_paper_kernel_psd(self):
        x = np.linspace(0, 72, 30)
        assert is_psd(paper_kernel()(x))
