"""Tests for forecast-quality metrics."""

import numpy as np
import pytest

from repro.exceptions import PredictionError
from repro.prediction import (
    GaussianProcessRegressor,
    interval_coverage,
    mae,
    mape,
    rmse,
    score_forecast,
)


class TestPointMetrics:
    def test_perfect_forecast(self):
        truth = np.array([1.0, 2.0, 3.0])
        assert mape(truth, truth) == 0.0
        assert rmse(truth, truth) == 0.0
        assert mae(truth, truth) == 0.0

    def test_known_values(self):
        truth = np.array([10.0, 10.0])
        predicted = np.array([11.0, 9.0])
        assert mape(truth, predicted) == pytest.approx(0.1)
        assert rmse(truth, predicted) == pytest.approx(1.0)
        assert mae(truth, predicted) == pytest.approx(1.0)

    def test_shape_mismatch(self):
        with pytest.raises(PredictionError):
            mape(np.ones(3), np.ones(4))

    def test_empty(self):
        with pytest.raises(PredictionError):
            rmse(np.array([]), np.array([]))

    def test_mape_needs_positive_truth(self):
        with pytest.raises(PredictionError):
            mape(np.array([0.0, 1.0]), np.array([1.0, 1.0]))

    def test_rmse_at_least_mae(self):
        rng = np.random.default_rng(0)
        truth = rng.uniform(1, 10, 50)
        predicted = truth + rng.normal(0, 1, 50)
        assert rmse(truth, predicted) >= mae(truth, predicted) - 1e-12


class TestCoverage:
    def test_full_coverage(self):
        truth = np.array([1.0, 2.0])
        assert interval_coverage(truth, truth, np.ones(2)) == 1.0

    def test_zero_coverage(self):
        truth = np.array([10.0, 10.0])
        mean = np.array([0.0, 0.0])
        assert interval_coverage(truth, mean, np.ones(2)) == 0.0

    def test_invalid_std(self):
        with pytest.raises(PredictionError):
            interval_coverage(np.ones(2), np.ones(2), -np.ones(2))

    def test_gp_intervals_roughly_calibrated(self):
        """A GP fit on a noisy sine should cover ~95% at 1.96 sigma."""
        rng = np.random.default_rng(1)
        x = np.arange(0, 120, dtype=float)
        y = 5 + np.sin(2 * np.pi * x / 24.0) + rng.normal(0, 0.15, len(x))
        gpr = GaussianProcessRegressor(n_restarts=1).fit(x[:96], y[:96])
        mean, std = gpr.predict(x[96:], return_std=True)
        coverage = interval_coverage(y[96:], mean, std)
        assert coverage >= 0.6  # calibrated-ish; small-sample slack


class TestScoreForecast:
    def test_bundle(self):
        truth = np.array([10.0, 20.0])
        predicted = np.array([12.0, 18.0])
        score = score_forecast(truth, predicted)
        assert score.mape == pytest.approx((0.2 + 0.1) / 2)
        assert score.coverage_95 is None

    def test_bundle_with_std(self):
        truth = np.array([10.0, 20.0])
        score = score_forecast(truth, truth, std=np.ones(2))
        assert score.coverage_95 == 1.0
