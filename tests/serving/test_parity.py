"""Parity suite: streaming engine vs the event-driven oracle.

The event simulator (:func:`repro.simulation.simulate`) is the semantic
reference.  On seeded small instances with fully served routings, the
vectorized engine must agree with it on

- analytic per-link loads (deterministic aggregation — near-exact),
- expected cost rate vs ``routing_cost`` (deterministic — near-exact),
- generated counts, empirical loads, served fraction, and delivered cost
  (independent random streams — statistical tolerance).
"""

import numpy as np
import pytest

from repro.core import Placement, route_to_nearest_replica, solve
from repro.core.evaluation import routing_cost
from repro.serving import ServingConfig, compile_tables, replay
from repro.simulation import SimulationConfig, simulate

from tests.core.conftest import make_line_problem, random_uncapacitated_problem

HORIZON = 300.0


def line_case():
    prob = make_line_problem(link_capacity=50.0)
    return prob, route_to_nearest_replica(prob, Placement())


def cached_line_case():
    prob = make_line_problem(cache_nodes={2: 1}, link_capacity=50.0)
    solution = solve(prob).solution
    return prob, solution.routing


def random_case(seed):
    prob = random_uncapacitated_problem(seed)
    return prob, route_to_nearest_replica(prob, Placement())


CASES = {
    "line": line_case,
    "cached-line": cached_line_case,
    "random-7": lambda: random_case(7),
    "random-11": lambda: random_case(11),
}


@pytest.fixture(params=sorted(CASES), ids=sorted(CASES))
def case(request):
    prob, routing = CASES[request.param]()
    tables = compile_tables(prob, routing)
    serving = replay(tables, ServingConfig(horizon=HORIZON, seed=3))
    sim = simulate(
        prob,
        routing,
        SimulationConfig(horizon=HORIZON, seed=3, max_requests=2_000_000),
    )
    return prob, routing, tables, serving, sim


class TestDeterministicParity:
    def test_analytic_loads_near_exact(self, case):
        _, _, _, serving, sim = case
        assert set(serving.analytic_loads) == set(sim.analytic_loads)
        for edge, load in sim.analytic_loads.items():
            assert serving.analytic_loads[edge] == pytest.approx(
                load, abs=1e-9
            )

    def test_expected_cost_rate_matches_routing_cost(self, case):
        prob, routing, tables, _, _ = case
        assert tables.expected_cost_rate() == pytest.approx(
            routing_cost(prob, routing), abs=1e-9
        )


class TestStatisticalParity:
    def test_generated_counts_agree(self, case):
        _, _, tables, serving, sim = case
        # Both draw Poisson(total_rate * horizon) arrivals.
        expected = tables.total_rate * HORIZON
        sigma = np.sqrt(expected)
        assert abs(serving.generated - expected) < 6 * sigma
        assert abs(sim.generated - expected) < 6 * sigma

    def test_everything_served_both_sides(self, case):
        _, _, _, serving, sim = case
        assert serving.served == serving.generated
        # Completions past the horizon still count as delivered (late).
        assert sim.delivered + sim.stalled_transfers == sim.generated
        assert sim.late_deliveries <= sim.delivered

    def test_empirical_loads_agree(self, case):
        _, _, _, serving, sim = case
        for edge, load in serving.analytic_loads.items():
            if load <= 0:
                continue
            assert serving.empirical_loads[edge] == pytest.approx(
                load, rel=0.15
            )
            assert sim.empirical_loads[edge] == pytest.approx(load, rel=0.15)

    def test_delivered_cost_agrees(self, case):
        prob, routing, _, serving, sim = case
        cost = routing_cost(prob, routing)
        if cost == 0.0:
            pytest.skip("free routing, nothing to compare")
        assert serving.delivered_cost / HORIZON == pytest.approx(
            cost, rel=0.15
        )
        assert sim.delivered_cost / HORIZON == pytest.approx(cost, rel=0.15)
        assert serving.delivered_cost == pytest.approx(
            sim.delivered_cost, rel=0.2
        )


class TestUnroutedParity:
    def test_unrouted_counts_agree(self):
        prob, routing = line_case()
        routing.paths[("item1", 4)] = []
        tables = compile_tables(prob, routing, allow_unrouted=True)
        serving = replay(tables, ServingConfig(horizon=HORIZON, seed=5))
        sim = simulate(
            prob,
            routing,
            SimulationConfig(
                horizon=HORIZON,
                seed=5,
                allow_unrouted=True,
                max_requests=2_000_000,
            ),
        )
        assert serving.unrouted_types == sim.unrouted_types == 1
        # The event loop skips generating unrouted types; the engine keeps
        # them as unserved arrivals.  Served counts are the comparable pair.
        rate_served = sum(
            prob.demand[r] for r in prob.requests if r != ("item1", 4)
        )
        expected = rate_served * HORIZON
        sigma = np.sqrt(expected)
        assert abs(serving.served - expected) < 6 * sigma
        assert abs(sim.generated - expected) < 6 * sigma
        assert serving.unserved > 0
