"""Degraded routing tables: bit-parity with recompiling the masked routing."""

import numpy as np
import pytest

from repro.core import Placement, Routing, route_to_nearest_replica
from repro.core.evaluation import link_loads
from repro.flow.decomposition import PathFlow
from repro.robustness import (
    FailureScenario,
    LinkFailure,
    NodeFailure,
    apply_failure,
    recover,
)
from repro.robustness.chaos import random_placement, random_problem
from repro.serving import TableDegradation, compile_tables, degrade_tables

from tests.core.conftest import make_line_problem


def _mask_routing(problem, routing, degr) -> Routing:
    """Reference filter: the exact clauses ``degrade_tables`` must apply."""
    down_nodes = set(degr.down_nodes)
    down_links = set(degr.down_links)
    wiped = set(degr.wiped)

    def alive(pf, item, requester):
        if requester in down_nodes:
            return False
        if any(v in down_nodes for v in pf.path):
            return False
        if any(e in down_links for e in zip(pf.path[:-1], pf.path[1:])):
            return False
        return (pf.source, item) not in wiped

    return Routing(
        {
            (item, s): [pf for pf in pfs if alive(pf, item, s)]
            for (item, s), pfs in routing.paths.items()
        }
    )


def assert_degrade_matches_recompile(problem, routing, degr):
    """``degrade_tables`` == fresh compile of the hand-masked routing.

    The degraded tables keep the original path/edge id space; the fresh
    compile renumbers surviving paths — the comparison goes through the
    order-preserving surviving-path id map, and every float (served_prob,
    slot thresholds, amounts) must match bit for bit.
    """
    base = compile_tables(problem, routing, allow_unrouted=True)
    deg = degrade_tables(base, degr)
    ref = compile_tables(
        problem, _mask_routing(problem, routing, degr), allow_unrouted=True
    )

    assert deg.num_types == ref.num_types == base.num_types
    assert np.array_equal(deg.rates, ref.rates)
    assert np.array_equal(deg.served_prob, ref.served_prob)  # bit-for-bit
    assert deg.unrouted_types == ref.unrouted_types

    # Order-preserving map: surviving original path id -> ref path id.
    survivors = np.flatnonzero(deg.path_amount > 0.0)
    assert len(survivors) == ref.num_paths
    to_ref = {int(orig): k for k, orig in enumerate(survivors)}
    assert np.array_equal(deg.path_amount[survivors], ref.path_amount)
    assert np.array_equal(deg.path_type[survivors], ref.path_type)
    assert np.array_equal(deg.path_cost[survivors], ref.path_cost)

    assert np.array_equal(deg.slot_ptr, ref.slot_ptr)
    assert np.array_equal(deg.slot_prob, ref.slot_prob)  # bit-for-bit
    assert np.array_equal(
        np.array([to_ref[int(p)] for p in deg.slot_path]), ref.slot_path
    )
    assert np.array_equal(
        np.array([to_ref[int(p)] for p in deg.slot_alias]), ref.slot_alias
    )


def _diamond_problem_and_routing():
    """Two disjoint 2-hop routes 0->1->3 and 0->2->3 with split flow."""
    import networkx as nx

    from repro.core import ProblemInstance, pin_full_catalog
    from repro.graph import CacheNetwork

    g = nx.DiGraph()
    for u, v, c in [(0, 1, 1.0), (1, 3, 1.0), (0, 2, 2.0), (2, 3, 1.0)]:
        g.add_edge(u, v, cost=c, capacity=float("inf"))
        g.add_edge(v, u, cost=c, capacity=float("inf"))
    net = CacheNetwork(g, {0: 2.0, 1: 1.0, 2: 1.0})
    catalog = ("A", "B")
    problem = ProblemInstance(
        network=net,
        catalog=catalog,
        demand={("A", 3): 4.0, ("B", 3): 1.0},
        pinned=pin_full_catalog(catalog, [0]),
    )
    routing = Routing(
        {
            ("A", 3): [
                PathFlow(path=(1, 3), amount=0.5),
                PathFlow(path=(0, 2, 3), amount=0.5),
            ],
            ("B", 3): [PathFlow(path=(0, 1, 3), amount=1.0)],
        }
    )
    return problem, routing


class TestBitParityEnumerated:
    def test_every_single_link_failure(self):
        problem, routing = _diamond_problem_and_routing()
        tables = compile_tables(problem, routing)
        for u, v in tables.edges:
            degr = TableDegradation(down_links=frozenset([(u, v), (v, u)]))
            assert_degrade_matches_recompile(problem, routing, degr)

    def test_every_single_node_failure(self):
        problem, routing = _diamond_problem_and_routing()
        for v in problem.network.nodes:
            degr = TableDegradation(down_nodes=frozenset([v]))
            assert_degrade_matches_recompile(problem, routing, degr)

    def test_wiped_copies(self):
        problem, routing = _diamond_problem_and_routing()
        for pair in [((1, "A"),), ((1, "A"), (2, "B"))]:
            degr = TableDegradation(wiped=frozenset(pair))
            assert_degrade_matches_recompile(problem, routing, degr)

    def test_random_instances_single_failures(self):
        rng = np.random.default_rng(11)
        for seed in range(3):
            problem = random_problem(rng, n_nodes=8, n_items=3)
            placement = random_placement(rng, problem)
            routing = route_to_nearest_replica(problem, placement)
            for scenario_node in sorted(problem.network.nodes, key=repr)[:4]:
                degr = TableDegradation(down_nodes=frozenset([scenario_node]))
                assert_degrade_matches_recompile(problem, routing, degr)
            links = sorted(
                {tuple(sorted(e, key=repr)) for e in problem.network.graph.edges}
            )[:4]
            for u, v in links:
                degr = TableDegradation(down_links=frozenset([(u, v), (v, u)]))
                assert_degrade_matches_recompile(problem, routing, degr)


class TestSemantics:
    def test_empty_degradation_is_identity(self):
        problem, routing = _diamond_problem_and_routing()
        tables = compile_tables(problem, routing)
        assert degrade_tables(tables, TableDegradation()) is tables

    def test_irrelevant_failure_is_identity(self):
        problem, routing = _diamond_problem_and_routing()
        tables = compile_tables(problem, routing)
        degr = TableDegradation(wiped=frozenset([(2, "A")]))  # unused source
        assert degrade_tables(tables, degr) is tables

    def test_all_replicas_dead_moves_mass_to_unserved(self):
        problem, routing = _diamond_problem_and_routing()
        tables = compile_tables(problem, routing)
        # Node 0 is the origin: every path of type B and half of A dies.
        deg = degrade_tables(tables, TableDegradation(down_nodes=frozenset([0])))
        t_b = tables.types.index(("B", 3))
        assert deg.served_prob[t_b] == 0.0
        assert deg.unrouted_types == 1
        # Arrival rates stay untouched: dead mass is explicit unserved.
        assert np.array_equal(deg.rates, tables.rates)
        t_a = tables.types.index(("A", 3))
        assert deg.served_prob[t_a] == pytest.approx(0.5)

    def test_dead_requester_is_offered_load(self):
        problem, routing = _diamond_problem_and_routing()
        tables = compile_tables(problem, routing)
        deg = degrade_tables(tables, TableDegradation(down_nodes=frozenset([3])))
        assert np.array_equal(deg.rates, tables.rates)
        assert (deg.served_prob == 0.0).all()
        assert deg.expected_served_rate() == 0.0

    def test_expected_loads_match_masked_link_loads(self):
        """Analytic per-edge loads == independent evaluation, within 1e-9."""
        rng = np.random.default_rng(5)
        problem = random_problem(rng, n_nodes=9, n_items=4)
        placement = random_placement(rng, problem)
        routing = route_to_nearest_replica(problem, placement)
        tables = compile_tables(problem, routing)
        victim = sorted(problem.network.nodes, key=repr)[3]
        degr = TableDegradation(down_nodes=frozenset([victim]))
        deg = degrade_tables(tables, degr)
        ref = link_loads(
            problem, _mask_routing(problem, routing, degr), demand=problem.demand
        )
        loads = deg.expected_loads()
        for edge in set(loads) | set(ref):
            assert loads.get(edge, 0.0) == pytest.approx(
                ref.get(edge, 0.0), abs=1e-9
            ), edge

    def test_recovered_routing_needs_no_degrading(self):
        """A recovery's routing avoids dead elements: degrade is a no-op."""
        rng = np.random.default_rng(9)
        problem = random_problem(rng, n_nodes=8, n_items=3)
        placement = random_placement(rng, problem)
        victim = sorted(
            v for v in problem.network.cache_nodes() if v != "n0"
        )[0]
        scenario = FailureScenario("one-node", (NodeFailure(victim),))
        result = recover(apply_failure(problem, scenario), placement)
        tables = compile_tables(problem, result.routing, allow_unrouted=True)
        deg = degrade_tables(
            tables, TableDegradation.from_scenario(scenario)
        )
        assert deg is tables

    def test_from_scenario_orientations(self):
        one_way = FailureScenario(
            "x", (LinkFailure("a", "b", both_directions=False),)
        )
        both = FailureScenario("y", (LinkFailure("a", "b"),))
        assert TableDegradation.from_scenario(one_way).down_links == {("a", "b")}
        assert TableDegradation.from_scenario(both).down_links == {
            ("a", "b"),
            ("b", "a"),
        }

    def test_line_problem_served_rate_matches_masked(self):
        prob = make_line_problem(cache_nodes={2: 1.0})
        placement = Placement({(2, "item0"): 1.0})
        routing = route_to_nearest_replica(prob, placement)
        tables = compile_tables(prob, routing)
        # Wiping the mid-line cache copy kills item0's short path.
        deg = degrade_tables(
            tables, TableDegradation(wiped=frozenset([(2, "item0")]))
        )
        assert deg.expected_served_rate() < tables.expected_served_rate()
        assert_degrade_matches_recompile(
            prob, routing, TableDegradation(wiped=frozenset([(2, "item0")]))
        )
