"""Tests for routing-table compilation and alias sampling."""

import numpy as np
import pytest

from repro.core import Placement, Routing, route_to_nearest_replica
from repro.core.evaluation import link_loads, routing_cost
from repro.exceptions import InvalidProblemError
from repro.flow.decomposition import PathFlow
from repro.serving import compile_tables
from repro.serving.tables import _alias_table

from tests.core.conftest import make_line_problem


def origin_routing(prob) -> Routing:
    return route_to_nearest_replica(prob, Placement())


class TestAliasTable:
    @pytest.mark.parametrize(
        "probs",
        [
            [1.0],
            [0.5, 0.5],
            [0.9, 0.1],
            [0.2, 0.3, 0.5],
            [0.01, 0.01, 0.98],
        ],
    )
    def test_alias_table_preserves_distribution(self, probs):
        probs = np.array(probs)
        accept, alias = _alias_table(probs)
        # Total acceptance mass per outcome reconstructs the distribution:
        # outcome i is drawn when slot i accepts, or any slot aliasing to i
        # rejects.
        k = len(probs)
        mass = np.zeros(k)
        for slot in range(k):
            mass[slot] += accept[slot] / k
            mass[alias[slot]] += (1.0 - accept[slot]) / k
        assert mass == pytest.approx(probs, abs=1e-12)

    def test_sampling_frequencies_match(self):
        probs = np.array([0.1, 0.6, 0.3])
        accept, alias = _alias_table(probs)
        rng = np.random.default_rng(0)
        n = 200_000
        v = rng.random(n) * 3
        slot = v.astype(np.int64)
        frac = v - slot
        outcome = np.where(frac < accept[slot], slot, alias[slot])
        freq = np.bincount(outcome, minlength=3) / n
        assert freq == pytest.approx(probs, abs=0.01)


class TestCompile:
    def test_types_follow_deterministic_order(self):
        prob = make_line_problem()
        tables = compile_tables(prob, origin_routing(prob))
        assert list(tables.types) == prob.requests
        assert tables.rates == pytest.approx(
            [prob.demand[r] for r in prob.requests]
        )
        assert tables.served_prob == pytest.approx(np.ones(tables.num_types))

    def test_expected_loads_match_core_link_loads(self):
        prob = make_line_problem(link_capacity=10.0)
        routing = origin_routing(prob)
        tables = compile_tables(prob, routing)
        expected = tables.expected_loads()
        # Homogeneous sizes: loads in the core metric are size-weighted too.
        for edge, load in link_loads(prob, routing).items():
            assert expected[edge] == pytest.approx(load, abs=1e-12)

    def test_expected_cost_rate_is_routing_cost(self):
        prob = make_line_problem()
        routing = origin_routing(prob)
        tables = compile_tables(prob, routing)
        assert tables.expected_cost_rate() == pytest.approx(
            routing_cost(prob, routing), abs=1e-9
        )

    def test_heterogeneous_sizes_weight_loads(self):
        from repro.core import ProblemInstance, pin_full_catalog
        from repro.graph import line_topology

        net = line_topology(3)
        prob = ProblemInstance(
            net,
            ("big", "small"),
            {("big", 2): 1.0, ("small", 2): 2.0},
            item_sizes={"big": 8.0, "small": 1.0},
            pinned=pin_full_catalog(("big", "small"), [0]),
        )
        tables = compile_tables(prob, origin_routing(prob))
        loads = tables.expected_loads()
        assert loads[(0, 1)] == pytest.approx(1.0 * 8.0 + 2.0 * 1.0)

    def test_fractional_routing_keeps_amounts(self):
        prob = make_line_problem(cache_nodes={3: 1})
        item = prob.catalog[0]
        routing = origin_routing(prob)
        routing.paths[(item, 4)] = [
            PathFlow(path=(0, 1, 2, 3, 4), amount=0.25),
            PathFlow(path=(3, 4), amount=0.75),
        ]
        tables = compile_tables(prob, routing)
        t = tables.types.index((item, 4))
        assert tables.served_prob[t] == pytest.approx(1.0)
        lo, hi = tables.slot_ptr[t], tables.slot_ptr[t + 1]
        assert hi - lo == 2
        amounts = tables.path_amount[tables.slot_path[lo:hi]]
        assert sorted(amounts) == pytest.approx([0.25, 0.75])

    def test_partial_routing_records_unserved_mass(self):
        prob = make_line_problem()
        routing = origin_routing(prob)
        item = prob.catalog[0]
        pf = routing.paths[(item, 4)][0]
        routing.paths[(item, 4)] = [PathFlow(path=pf.path, amount=0.4)]
        tables = compile_tables(prob, routing)
        t = tables.types.index((item, 4))
        assert tables.served_prob[t] == pytest.approx(0.4)

    def test_unrouted_rejected_unless_allowed(self):
        prob = make_line_problem()
        routing = origin_routing(prob)
        routing.paths[("item1", 4)] = []
        with pytest.raises(InvalidProblemError, match="no routing"):
            compile_tables(prob, routing)
        tables = compile_tables(prob, routing, allow_unrouted=True)
        assert tables.unrouted_types == 1
        t = tables.types.index(("item1", 4))
        assert tables.served_prob[t] == 0.0

    def test_zero_amount_paths_count_as_unrouted(self):
        prob = make_line_problem()
        routing = origin_routing(prob)
        pf = routing.paths[("item1", 4)][0]
        routing.paths[("item1", 4)] = [PathFlow(path=pf.path, amount=0.0)]
        tables = compile_tables(prob, routing, allow_unrouted=True)
        assert tables.unrouted_types == 1

    def test_path_costs_match_network(self):
        from repro.core.evaluation import path_cost

        prob = make_line_problem()
        routing = origin_routing(prob)
        tables = compile_tables(prob, routing)
        for t, request in enumerate(tables.types):
            lo, hi = tables.slot_ptr[t], tables.slot_ptr[t + 1]
            costs = tables.path_cost[tables.slot_path[lo:hi]]
            for pf in routing.paths[request]:
                want = path_cost(prob.network, pf.path)
                assert any(abs(c - want) < 1e-9 for c in costs)


class TestArrayRoundTrip:
    def test_from_arrays_reconstructs_tables(self):
        prob = make_line_problem(link_capacity=5.0)
        tables = compile_tables(prob, origin_routing(prob))
        rebuilt = type(tables).from_arrays(tables.labels(), tables.as_arrays())
        assert rebuilt.types == tables.types
        assert rebuilt.edges == tables.edges
        assert rebuilt.unrouted_types == tables.unrouted_types
        for name in tables._ARRAY_FIELDS:
            assert np.array_equal(getattr(rebuilt, name), getattr(tables, name))
