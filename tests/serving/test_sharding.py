"""Serial-vs-pooled bit parity and shm transport for the serving engine."""

import numpy as np
import pytest

from repro.core import Placement, route_to_nearest_replica
from repro.graph.shm import BundleBroadcast, attach_bundle
from repro.serving import ServingConfig, compile_tables, replay, replay_parallel
from repro.serving.sharding import (
    _run_shard_task,
    register_tables,
    unregister_tables,
)
from repro.serving.tables import RoutingTables

from tests.core.conftest import make_line_problem


@pytest.fixture
def tables():
    prob = make_line_problem(link_capacity=50.0)
    return compile_tables(prob, route_to_nearest_replica(prob, Placement()))


def assert_bit_identical(a, b):
    """Everything except wall-clock timing must match exactly."""
    assert a.generated == b.generated
    assert a.served == b.served
    assert a.unserved == b.unserved
    assert a.delivered_cost == b.delivered_cost
    assert a.empirical_loads == b.empirical_loads
    assert a.analytic_loads == b.analytic_loads
    assert np.array_equal(a.per_type_generated, b.per_type_generated)
    assert np.array_equal(a.per_type_served, b.per_type_served)


class TestBitParity:
    @pytest.mark.parametrize("n_shards", [2, 4])
    def test_pooled_matches_serial(self, tables, n_shards):
        config = ServingConfig(horizon=100.0, seed=7, n_shards=n_shards)
        serial = replay(tables, config)
        pooled = replay_parallel(tables, config, max_workers=2)
        assert serial.generated > 0
        assert_bit_identical(serial, pooled)

    def test_single_shard_degrades_to_serial(self, tables):
        config = ServingConfig(horizon=50.0, seed=1, n_shards=1)
        assert_bit_identical(
            replay(tables, config), replay_parallel(tables, config)
        )

    def test_seed_changes_stream(self, tables):
        a = replay(tables, ServingConfig(horizon=50.0, seed=0, n_shards=2))
        b = replay(tables, ServingConfig(horizon=50.0, seed=1, n_shards=2))
        assert a.generated != b.generated or a.delivered_cost != b.delivered_cost

    def test_sharded_totals_statistically_consistent(self, tables):
        """Thinned shards still realize the full demand rate overall."""
        horizon = 300.0
        expected = tables.total_rate * horizon
        for n_shards in (1, 4):
            report = replay(
                tables, ServingConfig(horizon=horizon, seed=2, n_shards=n_shards)
            )
            assert abs(report.generated - expected) < 6 * np.sqrt(expected)
            assert report.served == report.generated


class TestWorkerPlumbing:
    def test_run_shard_task_uses_registry(self, tables):
        key = "test-serving-registry"
        register_tables(key, tables)
        try:
            config = ServingConfig(horizon=20.0, seed=9, n_shards=2)
            seed_seq = np.random.SeedSequence(9).spawn(2)[0]
            acc = _run_shard_task((key, config, 0, seed_seq))
            assert int(acc.generated.sum()) > 0
        finally:
            unregister_tables(key)

    def test_tables_survive_bundle_round_trip(self, tables):
        broadcast = BundleBroadcast(tables.as_arrays())
        try:
            rebuilt = RoutingTables.from_arrays(
                tables.labels(), attach_bundle(broadcast.handle)
            )
            config = ServingConfig(horizon=30.0, seed=4, n_shards=2)
            assert_bit_identical(replay(tables, config), replay(rebuilt, config))
        finally:
            broadcast.close()


class _FakeFuture:
    def __init__(self, value=None, exc=None):
        self._value = value
        self._exc = exc

    def result(self):
        if self._exc is not None:
            raise self._exc
        return self._value


class _CrashAfterFirstShardPool:
    """Fake pool: shard 0 completes, then the pool 'crashes'.

    The initializer is deliberately NOT run — the owner pre-registered the
    tables under the shm key before constructing the pool, so computing
    shard 0 through the real ``_run_shard_task`` exercises the registry
    path without attaching a second shm mapping.
    """

    def __init__(self, max_workers=None, initializer=None, initargs=()):
        pass

    def __enter__(self):
        return self

    def __exit__(self, *exc):
        return False

    def submit(self, fn, task):
        shard = task[2]
        if shard == 0:
            return _FakeFuture(value=fn(task))
        from concurrent.futures.process import BrokenProcessPool

        return _FakeFuture(exc=BrokenProcessPool("worker died"))


class _NeverStartsPool:
    def __init__(self, *a, **kw):
        raise OSError("no process pool on this host")


def _shm_segments():
    import os

    return set(os.listdir("/dev/shm")) if os.path.isdir("/dev/shm") else set()


class TestWorkerCrashFallback:
    """Mid-campaign worker loss degrades to a bit-identical serial replay."""

    def test_broken_pool_mid_run_matches_serial(self, tables, monkeypatch):
        import repro.serving.sharding as sharding

        monkeypatch.setattr(
            sharding, "ProcessPoolExecutor", _CrashAfterFirstShardPool
        )
        config = ServingConfig(horizon=100.0, seed=7, n_shards=4)
        before = _shm_segments()
        pooled = replay_parallel(tables, config)
        assert _shm_segments() == before  # no leaked /dev/shm segments
        serial = replay(tables, config)
        assert serial.generated > 0
        assert_bit_identical(serial, pooled)

    def test_pool_unavailable_runs_all_serial(self, tables, monkeypatch):
        import repro.serving.sharding as sharding

        monkeypatch.setattr(sharding, "ProcessPoolExecutor", _NeverStartsPool)
        config = ServingConfig(horizon=80.0, seed=3, n_shards=3)
        before = _shm_segments()
        pooled = replay_parallel(tables, config)
        assert _shm_segments() == before
        assert_bit_identical(replay(tables, config), pooled)

    def test_registry_is_clean_after_fallback(self, tables, monkeypatch):
        import repro.serving.sharding as sharding

        monkeypatch.setattr(
            sharding, "ProcessPoolExecutor", _CrashAfterFirstShardPool
        )
        replay_parallel(tables, ServingConfig(horizon=20.0, seed=1, n_shards=2))
        assert sharding._TABLES == {}
