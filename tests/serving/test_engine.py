"""Tests for the vectorized request generator and replay engine."""

import math

import numpy as np
import pytest

from repro.core import Placement, route_to_nearest_replica
from repro.exceptions import InvalidProblemError
from repro.serving import (
    ServingConfig,
    compile_tables,
    generate_requests,
    horizon_for_requests,
    replay,
    replay_solution,
    serve_batch,
)

from tests.core.conftest import make_line_problem


@pytest.fixture
def tables():
    prob = make_line_problem()
    return compile_tables(prob, route_to_nearest_replica(prob, Placement()))


class TestConfig:
    def test_invalid_horizon_rejected(self):
        with pytest.raises(InvalidProblemError):
            ServingConfig(horizon=0.0)

    def test_invalid_shards_rejected(self):
        with pytest.raises(InvalidProblemError):
            ServingConfig(n_shards=0)


class TestGenerate:
    def test_counts_match_rates(self, tables):
        rng = np.random.default_rng(0)
        horizon = 500.0
        batch = generate_requests(tables, horizon, rng)
        counts = np.bincount(batch.type_ids, minlength=tables.num_types)
        expected = tables.rates * horizon
        # Poisson: relative error ~ 1/sqrt(n); 5 sigma margin.
        assert np.all(np.abs(counts - expected) < 5 * np.sqrt(expected) + 5)

    def test_timestamps_sorted_within_horizon(self, tables):
        rng = np.random.default_rng(1)
        batch = generate_requests(tables, 10.0, rng)
        assert np.all(np.diff(batch.timestamps) >= 0)
        assert batch.timestamps[0] >= 0.0
        assert batch.timestamps[-1] < 10.0

    def test_label_lookups(self, tables):
        rng = np.random.default_rng(2)
        batch = generate_requests(tables, 2.0, rng)
        items = batch.item_ids(tables)
        nodes = batch.requester_ids(tables)
        assert len(items) == len(nodes) == len(batch)
        for t, item, node in zip(batch.type_ids, items, nodes):
            assert tables.types[t] == (item, node)

    def test_max_requests_guard(self, tables):
        rng = np.random.default_rng(0)
        with pytest.raises(InvalidProblemError, match="max_requests"):
            generate_requests(tables, 1e9, rng, max_requests=1000)


class TestReplay:
    def test_everything_served_on_full_routing(self, tables):
        report = replay(tables, ServingConfig(horizon=50.0, seed=0))
        assert report.generated > 0
        assert report.served == report.generated
        assert report.unserved == 0
        assert report.served_fraction == pytest.approx(1.0)
        assert report.unrouted_types == 0

    def test_empirical_loads_near_analytic(self, tables):
        report = replay(tables, ServingConfig(horizon=400.0, seed=1))
        for edge, load in report.analytic_loads.items():
            assert report.empirical_loads[edge] == pytest.approx(load, rel=0.1)

    def test_delivered_cost_estimates_routing_cost(self, tables):
        report = replay(tables, ServingConfig(horizon=400.0, seed=2))
        assert report.delivered_cost / report.horizon == pytest.approx(
            tables.expected_cost_rate(), rel=0.1
        )

    def test_zero_generation_reports_nan_fraction(self, tables):
        # Tiny horizon relative to rates can still generate arrivals;
        # scale the rates to zero via an empty-demand problem instead.
        prob = make_line_problem(demand={("item0", 4): 1e-12})
        t = compile_tables(
            prob, route_to_nearest_replica(prob, Placement())
        )
        report = replay(t, ServingConfig(horizon=1.0, seed=0))
        assert report.generated == 0
        assert math.isnan(report.served_fraction)
        assert report.delivered_cost == 0.0

    def test_max_requests_guard_before_generation(self, tables):
        with pytest.raises(InvalidProblemError, match="max_requests"):
            replay(tables, ServingConfig(horizon=1e12, max_requests=100))

    def test_partial_routing_drops_unserved_mass(self):
        from repro.flow.decomposition import PathFlow

        prob = make_line_problem()
        routing = route_to_nearest_replica(prob, Placement())
        item = prob.catalog[0]
        pf = routing.paths[(item, 4)][0]
        routing.paths[(item, 4)] = [PathFlow(path=pf.path, amount=0.5)]
        t = compile_tables(prob, routing)
        report = replay(t, ServingConfig(horizon=400.0, seed=3))
        idx = t.types.index((item, 4))
        frac = report.per_type_served[idx] / report.per_type_generated[idx]
        assert frac == pytest.approx(0.5, abs=0.05)
        assert report.unserved > 0

    def test_serve_batch_accumulators_sum_to_report(self, tables):
        config = ServingConfig(horizon=50.0, seed=4)
        rng = np.random.default_rng(np.random.SeedSequence(4).spawn(1)[0])
        batch = generate_requests(tables, 50.0, rng)
        acc = serve_batch(tables, batch, rng)
        assert int(acc.generated.sum()) == len(batch)
        assert int(acc.path_counts.sum()) == int(acc.served.sum())
        report = replay(tables, config)
        assert report.generated == int(acc.generated.sum())
        assert report.delivered_cost == acc.delivered_cost

    def test_replay_solution_convenience(self):
        prob = make_line_problem()
        routing = route_to_nearest_replica(prob, Placement())
        report = replay_solution(
            prob, routing, ServingConfig(horizon=20.0, seed=5)
        )
        assert report.generated > 0
        assert report.served == report.generated


class TestHorizonForRequests:
    def test_scales_inverse_to_rate(self, tables):
        h = horizon_for_requests(tables, 1_000.0)
        assert h * tables.total_rate == pytest.approx(1_000.0)

    def test_rejects_zero_rate(self, tables):
        zeroed = type(tables).from_arrays(tables.labels(), tables.as_arrays())
        zeroed.rates[:] = 0.0
        with pytest.raises(InvalidProblemError, match="rate"):
            horizon_for_requests(zeroed, 1_000.0)


class TestDegenerateRates:
    """PR 8 satellite: zero/degenerate total_rate never divides by zero."""

    def _zeroed(self, tables):
        z = type(tables).from_arrays(tables.labels(), tables.as_arrays())
        z.rates[:] = 0.0
        return z

    def test_zero_rate_yields_empty_batch(self, tables):
        rng = np.random.default_rng(0)
        batch = generate_requests(self._zeroed(tables), 10.0, rng)
        assert len(batch) == 0
        assert batch.timestamps.shape == (0,)
        assert batch.type_ids.dtype == np.int64

    def test_zero_rate_consumes_no_randomness(self, tables):
        """Alignment guarantee for segmented replays with dead segments."""
        a, b = np.random.default_rng(7), np.random.default_rng(7)
        generate_requests(self._zeroed(tables), 5.0, a)
        assert a.random() == b.random()

    def test_zero_rate_scale_yields_empty_batch(self, tables):
        batch = generate_requests(
            tables, 10.0, np.random.default_rng(0), rate_scale=0.0
        )
        assert len(batch) == 0

    def test_empty_batch_serves_cleanly(self, tables):
        rng = np.random.default_rng(1)
        batch = generate_requests(self._zeroed(tables), 10.0, rng)
        acc = serve_batch(tables, batch, rng)
        assert int(acc.generated.sum()) == 0
        assert acc.delivered_cost == 0.0

    def test_nonfinite_rate_raises(self, tables):
        bad = type(tables).from_arrays(tables.labels(), tables.as_arrays())
        bad.rates[0] = float("inf")
        with pytest.raises(InvalidProblemError, match="degenerate"):
            generate_requests(bad, 1.0, np.random.default_rng(0))

    def test_negative_rate_raises(self, tables):
        bad = type(tables).from_arrays(tables.labels(), tables.as_arrays())
        bad.rates[0] = -1.0
        with pytest.raises(InvalidProblemError, match="degenerate"):
            generate_requests(bad, 1.0, np.random.default_rng(0))

    def test_bad_rate_scale_raises(self, tables):
        for scale in (-1.0, float("nan"), float("inf")):
            with pytest.raises(InvalidProblemError, match="rate_scale"):
                generate_requests(
                    tables, 1.0, np.random.default_rng(0), rate_scale=scale
                )

    def test_horizon_for_requests_rejects_bad_targets(self, tables):
        for n in (0, -5, float("nan")):
            with pytest.raises(InvalidProblemError, match="n_requests"):
                horizon_for_requests(tables, n)
