"""Tests for the command-line interface."""

import pytest

from repro.cli import main


class TestTrace:
    def test_prints_table1(self, capsys):
        assert main(["trace"]) == 0
        out = capsys.readouterr().out
        assert "dNCWe_6HAM8" in out
        assert "14,144,021" in out


class TestScenario:
    def test_runs_algorithms(self, capsys):
        code = main(
            [
                "scenario",
                "--link-fraction", "0",
                "--algorithms", "alg1,sp",
                "--runs", "1",
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "alg1" in out
        assert "sp" in out

    def test_unknown_algorithm_exits(self):
        with pytest.raises(SystemExit):
            main(["scenario", "--algorithms", "quantum"])

    def test_ksp_with_custom_k(self, capsys):
        code = main(
            [
                "scenario",
                "--link-fraction", "0",
                "--algorithms", "ksp2",
                "--runs", "1",
                "--videos", "4",
            ]
        )
        assert code == 0
        assert "ksp2" in capsys.readouterr().out


class TestOnline:
    def test_oracle_loop(self, capsys):
        code = main(
            [
                "online",
                "--hours", "2",
                "--algorithm", "sp",
                "--link-fraction", "0",
                "--videos", "4",
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "total cost" in out
        assert "oracle" in out


class TestSimulate:
    def test_simulation_summary(self, capsys):
        code = main(
            [
                "simulate",
                "--algorithm", "sp",
                "--scale", "1e-4",
                "--horizon", "0.5",
                "--videos", "4",
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "max link utilization" in out


class TestServe:
    def test_streaming_replay_summary(self, capsys):
        code = main(
            [
                "serve",
                "--algorithm", "sp",
                "--link-fraction", "0",
                "--videos", "4",
                "--requests", "20000",
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "replayed" in out
        assert "requests/sec" in out
        assert "delivered cost rate" in out

    def test_sharded_replay(self, capsys):
        code = main(
            [
                "serve",
                "--algorithm", "sp",
                "--link-fraction", "0",
                "--videos", "4",
                "--requests", "20000",
                "--shards", "2",
            ]
        )
        assert code == 0
        assert "2 shard(s)" in capsys.readouterr().out


class TestRobustness:
    def test_gadget_survives_every_single_link_failure(self, capsys):
        assert main(["robustness", "--topology", "gadget"]) == 0
        out = capsys.readouterr().out
        assert "4/4 scenarios fully served" in out
        assert "link:'v1'--'s'" in out

    def test_node_failures_on_scenario_topology(self, capsys):
        code = main(
            [
                "robustness",
                "--link-fraction", "0",
                "--videos", "4",
                "--failures", "single-node",
                "--max-scenarios", "2",
                "--repair",
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "worst inflation" in out
        assert "node:" in out

    def test_timeline_replay_on_gadget(self, capsys):
        code = main(
            [
                "robustness",
                "--topology", "gadget",
                "--timeline",
                "--horizon", "30",
                "--seed", "3",
                "--detection-delay", "0.5",
                "--backoff", "0.25",
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "events over horizon 30" in out
        assert "availability" in out
        assert "re-optimizations" in out

    def test_random_failures_need_no_extra_flags(self, capsys):
        code = main(
            [
                "robustness",
                "--topology", "gadget",
                "--failures", "random",
                "--samples", "3",
            ]
        )
        assert code == 0
        assert "worst unserved" in capsys.readouterr().out


class TestPredict:
    def test_prediction_table(self, capsys):
        code = main(["predict", "--hours", "3"])
        assert code == 0
        out = capsys.readouterr().out
        assert "MAPE" in out
