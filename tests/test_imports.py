"""Package hygiene: every module imports cleanly and __all__ names resolve."""

import importlib
import pkgutil
from pathlib import Path

import pytest

import repro

MODULES = sorted(
    name
    for _finder, name, _ispkg in pkgutil.walk_packages(
        repro.__path__, prefix="repro."
    )
    if "__main__" not in name
)


@pytest.mark.parametrize("module_name", MODULES)
def test_module_imports(module_name):
    importlib.import_module(module_name)


@pytest.mark.parametrize(
    "package",
    [
        "repro",
        "repro.core",
        "repro.flow",
        "repro.graph",
        "repro.workload",
        "repro.prediction",
        "repro.baselines",
        "repro.experiments",
        "repro.simulation",
    ],
)
def test_all_names_resolve(package):
    module = importlib.import_module(package)
    assert hasattr(module, "__all__")
    for name in module.__all__:
        assert hasattr(module, name), f"{package}.__all__ lists missing {name!r}"


def test_py_typed_marker_shipped():
    assert (Path(repro.__file__).parent / "py.typed").exists()


def test_version_is_exposed():
    assert isinstance(repro.__version__, str)
