"""End-to-end integration tests across the whole stack.

These stitch the layers together the way a user would: scenario building,
the unified solve() API across regimes, benchmarks, online operation, and
event-driven validation, asserting the paper-level invariants on the
results (regime ordering, feasibility, congestion semantics).
"""

import numpy as np
import pytest

from repro.baselines import candidate_path_baseline, shortest_path_baseline
from repro.core import (
    check_feasibility,
    congestion,
    exact_icir,
    solve,
)
from repro.experiments import (
    ScenarioConfig,
    algorithms as alg,
    build_scenario,
)
from repro.experiments.online import run_online
from repro.simulation import SimulationConfig, scale_problem, simulate

from tests.core.conftest import make_line_problem, random_uncapacitated_problem


class TestRegimeOrderingOnScenarios:
    """FC-FR <= IC-FR <= IC-IR-ish cost chain on realistic instances."""

    @pytest.fixture(scope="class")
    def scenario(self):
        return build_scenario(ScenarioConfig(seed=0, num_videos=4))

    def test_chain(self, scenario):
        prob = scenario.problem
        rng = np.random.default_rng(0)
        fcfr = solve(prob, caching="fractional", routing="fractional")
        icfr = solve(prob, caching="integral", routing="fractional", rng=rng)
        icir = solve(prob, caching="integral", routing="integral", rng=rng)
        assert fcfr.cost <= icfr.cost + 1e-6
        # IC-FR is a relaxation of IC-IR, but both are heuristic here, so we
        # only require the LP lower bound to hold for IC-IR too.
        assert fcfr.cost <= icir.cost + 1e-6
        for result in (fcfr, icfr, icir):
            assert result.feasible or result.congestion <= 1 + 1e-6

    def test_benchmarks_congest_where_we_do_not(self, scenario):
        prob = scenario.problem
        ours = solve(prob, rng=np.random.default_rng(0))
        sp = shortest_path_baseline(prob)
        ksp = candidate_path_baseline(prob, k=10)
        assert ours.congestion < congestion(prob, sp.routing)
        assert ours.congestion < congestion(prob, ksp.routing)


class TestExactValidation:
    def test_solve_matches_exact_on_tiny_uncapacitated(self):
        prob = make_line_problem(cache_nodes={3: 1, 4: 1})
        exact = exact_icir(prob)
        approx = solve(prob)
        # Algorithm 1 + polish hits the optimum on this toy.
        assert approx.cost == pytest.approx(exact.cost)

    @pytest.mark.parametrize("seed", [11, 29, 47])
    def test_algorithm1_near_exact_on_random_instances(self, seed):
        prob = random_uncapacitated_problem(seed)
        exact = exact_icir(prob, max_placements=200_000)
        approx = solve(prob)
        assert approx.cost >= exact.cost - 1e-9
        assert approx.cost <= 1.3 * exact.cost + 1e-9


class TestSimulationClosesTheLoop:
    def test_optimized_scenario_simulates_cleanly(self):
        scenario = build_scenario(ScenarioConfig(seed=1, num_videos=4))
        solution = alg.alternating(mmufp_method="best")(scenario)
        scaled = scale_problem(scenario.problem, 2e-4)
        report = simulate(
            scaled, solution.routing, SimulationConfig(horizon=4.0, seed=0)
        )
        assert report.delivered == report.generated
        # Near-feasible plan -> bounded utilization and modest backlog.
        assert report.max_utilization < 2.0
        assert report.late_deliveries < 0.1 * report.generated


class TestOnlinePipeline:
    def test_online_alternating_over_three_hours(self):
        result = run_online(
            ScenarioConfig(seed=2, num_videos=4),
            alg.alternating(mmufp_method="best", max_iterations=4),
            name="alternating",
            hours=3,
        )
        assert result.failures == 0
        assert result.worst_congestion <= 1.5
        assert result.total_cost > 0


class TestFeasibilityEverywhere:
    @pytest.mark.parametrize(
        "solver_name",
        ["alternating", "sp", "ksp1", "ksp10"],
    )
    def test_every_solver_serves_every_request(self, solver_name):
        scenario = build_scenario(ScenarioConfig(seed=3, num_videos=4))
        solvers = {
            "alternating": alg.alternating(mmufp_method="best", max_iterations=4),
            "sp": alg.sp,
            "ksp1": alg.ksp(1),
            "ksp10": alg.ksp(10),
        }
        solution = solvers[solver_name](scenario)
        report = check_feasibility(scenario.problem, solution)
        assert report.served_ok
        assert report.sources_ok
