"""Simulator safety limits: request caps, dead links, stranded routings.

Failure-scenario replays push the simulator outside the healthy envelope:
links degraded to zero capacity in place, requests whose routing was
stranded by a failure, and runaway arrival rates.  None of these may
crash the event loop.
"""

import math

import pytest

from repro.core import Placement, Routing, route_to_nearest_replica
from repro.exceptions import InvalidProblemError
from repro.graph.network import CAPACITY
from repro.simulation import SimulationConfig, simulate

from tests.core.conftest import make_line_problem


def origin_routing(prob) -> Routing:
    return route_to_nearest_replica(prob, Placement())


class TestRequestCap:
    def test_per_type_expected_arrivals_capped(self):
        prob = make_line_problem(demand={("item0", 4): 1e9})
        with pytest.raises(InvalidProblemError, match="scale the instance down"):
            simulate(
                prob,
                origin_routing(prob),
                SimulationConfig(horizon=1.0, max_requests=100),
            )

    def test_total_arrivals_capped(self):
        prob = make_line_problem(
            demand={("item0", 4): 8.0, ("item1", 4): 8.0}
        )
        with pytest.raises(InvalidProblemError, match="max_requests"):
            simulate(
                prob,
                origin_routing(prob),
                SimulationConfig(horizon=1.0, max_requests=9, seed=0),
            )


class TestZeroCapacityLink:
    def _dead_link_problem(self):
        prob = make_line_problem(link_capacity=100.0)
        # A failure scenario degraded the first hop in place: CacheNetwork
        # validation would reject cap=0, so mutate the edge attribute the
        # way capacity-degradation instances do.
        prob.network.graph.edges[0, 1][CAPACITY] = 0.0
        return prob

    def test_transfers_stall_instead_of_dividing_by_zero(self):
        prob = self._dead_link_problem()
        report = simulate(
            prob, origin_routing(prob), SimulationConfig(horizon=5.0, seed=1)
        )
        assert report.generated > 0
        assert report.stalled_transfers == 1  # the first transfer wedges the link
        assert report.delivered < report.generated
        # The dead link stays busy to the end of the horizon.
        assert report.utilization[(0, 1)] == pytest.approx(1.0, abs=0.05)

    def test_healthy_links_keep_delivering(self):
        prob = make_line_problem(
            num_nodes=3,
            cache_nodes={1: 1},
            demand={("item0", 2): 5.0, ("item1", 2): 1.0},
            link_capacity=100.0,
        )
        prob.network.graph.edges[0, 1][CAPACITY] = 0.0
        routing = route_to_nearest_replica(prob, Placement({(1, "item0"): 1.0}))
        report = simulate(prob, routing, SimulationConfig(horizon=5.0, seed=2))
        # item0 is served from the cache beyond the dead link; only item1
        # (origin-routed across the dead first hop) stalls.
        assert report.stalled_transfers >= 1
        assert report.delivered > 0


class TestUnroutedRequests:
    def _stranded(self):
        prob = make_line_problem()
        routing = origin_routing(prob)
        routing.paths[("item1", 4)] = []  # stranded by a failure
        return prob, routing

    def test_raises_by_default(self):
        prob, routing = self._stranded()
        with pytest.raises(InvalidProblemError, match="no routing"):
            simulate(prob, routing, SimulationConfig(horizon=1.0))

    def test_allow_unrouted_skips_and_counts(self):
        prob, routing = self._stranded()
        report = simulate(
            prob, routing, SimulationConfig(horizon=5.0, seed=3, allow_unrouted=True)
        )
        assert report.unrouted_types == 1
        assert report.generated > 0  # the servable type still runs
        assert report.delivered == report.generated

    def test_empty_routing_with_allow_unrouted(self):
        prob = make_line_problem()
        report = simulate(
            prob, Routing(), SimulationConfig(horizon=1.0, allow_unrouted=True)
        )
        assert report.unrouted_types == len(prob.demand)
        assert report.generated == report.delivered == 0
        # No deliveries -> latency is undefined (NaN), not "instant".
        assert math.isnan(report.mean_latency)
        assert math.isnan(report.p95_latency)
        assert math.isnan(report.max_latency)
        assert report.max_utilization == 0.0

    def test_zero_amount_paths_count_as_unrouted(self):
        prob = make_line_problem()
        routing = origin_routing(prob)
        routing.paths[("item1", 4)] = [
            type(routing.paths[("item0", 4)][0])(path=(0, 1, 2, 3, 4), amount=0.0)
        ]
        report = simulate(
            prob, routing, SimulationConfig(horizon=2.0, allow_unrouted=True, seed=4)
        )
        assert report.unrouted_types == 1


class TestStalledAccounting:
    def test_queue_behind_stalled_link_never_served(self):
        prob = make_line_problem(link_capacity=100.0)
        prob.network.graph.edges[0, 1][CAPACITY] = 0.0
        report = simulate(
            prob, origin_routing(prob), SimulationConfig(horizon=10.0, seed=5)
        )
        # Exactly one transfer occupies the link forever; the rest queue.
        assert report.stalled_transfers == 1
        assert report.delivered == 0
        # Undefined latency is NaN, never inf or a fake 0.0.
        assert math.isnan(report.mean_latency)
