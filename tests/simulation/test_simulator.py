"""Tests for the event-driven validation simulator."""

import math

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import Placement, Routing, route_to_nearest_replica
from repro.exceptions import InvalidProblemError
from repro.flow.decomposition import PathFlow
from repro.simulation import SimulationConfig, scale_problem, simulate

from tests.core.conftest import make_line_problem


def origin_routing(prob) -> Routing:
    return route_to_nearest_replica(prob, Placement())


class TestConfigAndScaling:
    def test_bad_horizon(self):
        with pytest.raises(InvalidProblemError):
            SimulationConfig(horizon=0.0)

    def test_scale_problem_keeps_ratios(self):
        prob = make_line_problem(link_capacity=10.0)
        scaled = scale_problem(prob, 0.5)
        assert sum(scaled.demand.values()) == pytest.approx(3.0)
        assert scaled.network.capacity(0, 1) == pytest.approx(5.0)
        # Original untouched.
        assert prob.network.capacity(0, 1) == pytest.approx(10.0)

    def test_scale_problem_invalid_factor(self):
        with pytest.raises(InvalidProblemError):
            scale_problem(make_line_problem(), 0.0)

    def test_scale_keeps_infinite_capacity(self):
        prob = make_line_problem()
        scaled = scale_problem(prob, 0.1)
        assert math.isinf(scaled.network.capacity(0, 1))


class TestSimulate:
    def test_all_requests_delivered(self):
        prob = make_line_problem(link_capacity=20.0)
        report = simulate(prob, origin_routing(prob), SimulationConfig(horizon=10.0))
        assert report.delivered == report.generated
        assert report.generated > 0

    def test_self_serving_request_zero_latency(self):
        prob = make_line_problem(cache_nodes={4: 2})
        placement = Placement(
            {(4, prob.catalog[0]): 1.0, (4, prob.catalog[1]): 1.0}
        )
        routing = route_to_nearest_replica(prob, placement)
        report = simulate(prob, routing, SimulationConfig(horizon=5.0))
        assert report.mean_latency == pytest.approx(0.0)
        assert report.max_utilization == 0.0

    def test_uncapacitated_links_have_zero_service_time(self):
        prob = make_line_problem()  # infinite capacities
        report = simulate(prob, origin_routing(prob), SimulationConfig(horizon=5.0))
        assert report.mean_latency == pytest.approx(0.0)
        assert report.utilization == {}

    def test_empirical_loads_match_analytic(self):
        prob = make_line_problem(link_capacity=50.0)
        report = simulate(
            prob, origin_routing(prob), SimulationConfig(horizon=200.0, seed=3)
        )
        for edge, analytic in report.analytic_loads.items():
            empirical = report.empirical_loads.get(edge, 0.0)
            assert empirical == pytest.approx(analytic, rel=0.15)

    def test_utilization_tracks_load_over_capacity(self):
        prob = make_line_problem(link_capacity=10.0)  # load 6 -> util 0.6
        report = simulate(
            prob, origin_routing(prob), SimulationConfig(horizon=100.0, seed=5)
        )
        assert report.max_utilization == pytest.approx(0.6, rel=0.15)
        assert report.late_deliveries <= report.generated * 0.05

    def test_overloaded_link_produces_backlog(self):
        prob = make_line_problem(link_capacity=3.0)  # load 6 -> congestion 2.0
        report = simulate(
            prob, origin_routing(prob), SimulationConfig(horizon=50.0, seed=7)
        )
        # Utilization is windowed at the horizon: an overloaded link
        # saturates at 1.0 instead of counting service past the horizon.
        assert report.max_utilization == pytest.approx(1.0, abs=0.05)
        assert report.max_utilization <= 1.0 + 1e-12
        # Queueing explodes: latency far above service time, work spills
        # past the horizon.
        assert report.late_deliveries > 0
        assert report.p95_latency > 1.0

    def test_overloaded_and_stalled_links_clamp_alike(self):
        # Same failure-mode symmetry the horizon-clamp fix guarantees: a
        # zero-capacity (stalled) link and a grossly overloaded finite link
        # both report utilization <= 1 over the horizon.
        from repro.graph.network import CAPACITY

        overloaded = make_line_problem(link_capacity=0.5)  # congestion 12
        rep_over = simulate(
            overloaded, origin_routing(overloaded), SimulationConfig(horizon=20.0, seed=3)
        )
        stalled = make_line_problem(link_capacity=100.0)
        stalled.network.graph.edges[0, 1][CAPACITY] = 0.0
        rep_stall = simulate(
            stalled, origin_routing(stalled), SimulationConfig(horizon=20.0, seed=3)
        )
        for report in (rep_over, rep_stall):
            assert report.max_utilization <= 1.0 + 1e-12
        assert rep_over.utilization[(0, 1)] == pytest.approx(1.0, abs=0.05)
        assert rep_stall.utilization[(0, 1)] == pytest.approx(1.0, abs=0.05)

    def test_delivered_cost_tracks_routing_cost(self):
        from repro.core.evaluation import routing_cost

        prob = make_line_problem(link_capacity=50.0)
        routing = origin_routing(prob)
        horizon = 200.0
        report = simulate(prob, routing, SimulationConfig(horizon=horizon, seed=13))
        assert report.delivered_cost / horizon == pytest.approx(
            routing_cost(prob, routing), rel=0.15
        )

    def test_zero_deliveries_report_nan_latency(self):
        # Regression: a fully stalled replay must not look like instant
        # delivery (latency used to be reported as 0.0).
        from repro.graph.network import CAPACITY

        prob = make_line_problem(link_capacity=100.0)
        prob.network.graph.edges[0, 1][CAPACITY] = 0.0
        report = simulate(
            prob, origin_routing(prob), SimulationConfig(horizon=5.0, seed=1)
        )
        assert report.delivered == 0
        assert math.isnan(report.mean_latency)
        assert math.isnan(report.p95_latency)
        assert math.isnan(report.max_latency)
        assert report.delivered_cost == 0.0
        # ...while instant delivery still reports exactly 0.0 (see
        # test_self_serving_request_zero_latency).

    def test_missing_routing_rejected(self):
        prob = make_line_problem()
        with pytest.raises(InvalidProblemError):
            simulate(prob, Routing(), SimulationConfig(horizon=1.0))

    def test_request_cap_enforced(self):
        prob = make_line_problem()
        with pytest.raises(InvalidProblemError):
            simulate(
                prob,
                origin_routing(prob),
                SimulationConfig(horizon=10.0, max_requests=10),
            )

    def test_seed_reproducible(self):
        prob = make_line_problem(link_capacity=20.0)
        a = simulate(prob, origin_routing(prob), SimulationConfig(horizon=5.0, seed=9))
        b = simulate(prob, origin_routing(prob), SimulationConfig(horizon=5.0, seed=9))
        assert a.generated == b.generated
        assert a.mean_latency == pytest.approx(b.mean_latency)

    def test_fractional_routing_splits_traffic(self):
        prob = make_line_problem(cache_nodes={3: 1}, link_capacity=50.0)
        item = prob.catalog[0]
        routing = origin_routing(prob)
        routing.paths[(item, 4)] = [
            PathFlow(path=(0, 1, 2, 3, 4), amount=0.5),
            PathFlow(path=(3, 4), amount=0.5),
        ]
        report = simulate(prob, routing, SimulationConfig(horizon=100.0, seed=11))
        # Link (0,1) carries only half of item0's rate (2.5) plus item1 (1).
        assert report.empirical_loads[(0, 1)] == pytest.approx(3.5, rel=0.2)

    def test_heterogeneous_sizes_scale_service_time(self):
        from repro.core import ProblemInstance, pin_full_catalog
        from repro.graph import line_topology

        net = line_topology(3)
        net.set_uniform_link_capacity(10.0)
        prob = ProblemInstance(
            net,
            ("big", "small"),
            {("big", 2): 1.0, ("small", 2): 1.0},
            item_sizes={"big": 8.0, "small": 1.0},
            pinned=pin_full_catalog(("big", "small"), [0]),
        )
        routing = origin_routing(prob)
        report = simulate(prob, routing, SimulationConfig(horizon=100.0, seed=2))
        # Load = (1*8 + 1*1) MB/h over capacity 10 -> utilization ~0.9.
        assert report.max_utilization == pytest.approx(0.9, rel=0.25)

    @settings(max_examples=10, deadline=None)
    @given(st.integers(min_value=0, max_value=100))
    def test_conservation_generated_equals_delivered(self, seed):
        prob = make_line_problem(link_capacity=15.0)
        report = simulate(
            prob, origin_routing(prob), SimulationConfig(horizon=20.0, seed=seed)
        )
        assert report.delivered == report.generated
        assert report.mean_latency >= 0
        assert report.p95_latency <= report.max_latency + 1e-12
