"""Tests for scenario construction."""

import math

import pytest

from repro.exceptions import InvalidProblemError
from repro.experiments import (
    ScenarioConfig,
    binary_cache_servers,
    build_scenario,
    pin_servers,
)


class TestScenarioConfig:
    def test_default_matches_paper(self):
        config = ScenarioConfig()
        assert config.level == "chunk"
        assert config.cache_capacity == 12
        assert config.link_capacity_fraction == pytest.approx(0.007)

    def test_bad_level_rejected(self):
        with pytest.raises(ValueError):
            ScenarioConfig(level="blob")

    def test_file_level_needs_capacity(self):
        with pytest.raises(ValueError):
            ScenarioConfig(level="file", cache_capacity=0.5)


class TestBuildScenario:
    def test_chunk_level_default(self):
        scenario = build_scenario(ScenarioConfig(seed=1))
        assert len(scenario.problem.catalog) == 54  # top-10 at 100 MB
        assert scenario.problem.item_sizes is None
        # Every edge node has a 12-chunk cache.
        for v in scenario.edge_nodes:
            assert scenario.problem.network.cache_capacity(v) == 12

    def test_origin_pins_everything(self):
        scenario = build_scenario(ScenarioConfig(seed=1))
        assert scenario.problem.pinned_items_at(scenario.origin) == set(
            scenario.problem.catalog
        )

    def test_cost_distributions(self):
        scenario = build_scenario(ScenarioConfig(seed=2))
        net = scenario.problem.network
        for (u, v), cost in net.costs().items():
            if scenario.origin in (u, v):
                assert 100 <= cost <= 200
            else:
                assert 1 <= cost <= 20

    def test_link_capacity_fraction(self):
        scenario = build_scenario(ScenarioConfig(seed=3, augment_origin_paths=False))
        total = sum(scenario.problem.demand.values())
        caps = set(scenario.problem.network.capacities().values())
        assert len(caps) == 1
        assert caps.pop() == pytest.approx(0.007 * total)

    def test_unlimited_links(self):
        scenario = build_scenario(
            ScenarioConfig(seed=3, link_capacity_fraction=None)
        )
        assert all(
            math.isinf(c) for c in scenario.problem.network.capacities().values()
        )

    def test_augmentation_makes_origin_routing_feasible(self):
        from repro.core import Placement, mmsfp_routing

        scenario = build_scenario(ScenarioConfig(seed=4))
        # Origin-only routing must be feasible thanks to augmentation.
        result = mmsfp_routing(scenario.problem, Placement())
        assert result.cost > 0

    def test_file_level_sizes_and_capacity(self):
        scenario = build_scenario(
            ScenarioConfig(level="file", cache_capacity=2, seed=5)
        )
        sizes = scenario.problem.item_sizes
        assert sizes is not None and len(sizes) == 10
        import numpy as np

        mean_size = float(np.mean(list(sizes.values())))
        for v in scenario.edge_nodes:
            assert scenario.problem.network.cache_capacity(v) == pytest.approx(
                2 * mean_size
            )

    def test_file_level_demand_in_mb(self):
        chunk = build_scenario(ScenarioConfig(seed=6, augment_origin_paths=False))
        file_ = build_scenario(
            ScenarioConfig(level="file", cache_capacity=2, seed=6,
                           augment_origin_paths=False)
        )
        # File-level total demand (MB/h) ~ chunk-level (chunks/h) * ~89 MB.
        assert sum(file_.problem.demand.values()) > 10 * sum(
            chunk.problem.demand.values()
        )

    def test_seed_changes_shares(self):
        a = build_scenario(ScenarioConfig(seed=1))
        b = build_scenario(ScenarioConfig(seed=2))
        assert a.problem.demand != b.problem.demand

    def test_seed_reproducible(self):
        a = build_scenario(ScenarioConfig(seed=1))
        b = build_scenario(ScenarioConfig(seed=1))
        assert a.problem.demand == b.problem.demand

    def test_unknown_topology(self):
        with pytest.raises(InvalidProblemError):
            build_scenario(ScenarioConfig(topology="mars-net"))

    def test_predicted_rates_build_predicted_problem(self):
        scenario = build_scenario(
            ScenarioConfig(seed=1),
            predicted_rates={
                vid: rate * 1.1
                for vid, rate in build_scenario(ScenarioConfig(seed=1)).video_rates.items()
            },
        )
        assert scenario.predicted_problem is not None
        assert scenario.planning_problem() is scenario.predicted_problem
        assert sum(scenario.predicted_problem.demand.values()) == pytest.approx(
            1.1 * sum(scenario.problem.demand.values())
        )

    def test_planning_problem_defaults_to_truth(self):
        scenario = build_scenario(ScenarioConfig(seed=1))
        assert scenario.planning_problem() is scenario.problem


class TestZipfScenario:
    def test_build_zipf_scenario(self):
        from repro.experiments import build_zipf_scenario

        scenario = build_zipf_scenario(num_items=20, alpha=0.9, seed=3)
        assert len(scenario.problem.catalog) == 20
        assert sum(scenario.problem.demand.values()) == pytest.approx(1000.0)
        assert scenario.problem.pinned_items_at(scenario.origin) == set(
            scenario.problem.catalog
        )

    def test_zipf_scenario_reproducible(self):
        from repro.experiments import build_zipf_scenario

        a = build_zipf_scenario(seed=5)
        b = build_zipf_scenario(seed=5)
        assert a.problem.demand == b.problem.demand

    def test_zipf_origin_routing_feasible(self):
        from repro.core import Placement, mmsfp_routing
        from repro.experiments import build_zipf_scenario

        scenario = build_zipf_scenario(seed=1)
        result = mmsfp_routing(scenario.problem, Placement())
        assert result.cost > 0


class TestBinaryCaseHelpers:
    def test_binary_cache_servers(self):
        scenario = build_scenario(ScenarioConfig(seed=1))
        servers = binary_cache_servers(scenario)
        assert servers[0] == scenario.origin
        assert servers[1] in scenario.edge_nodes

    def test_pin_servers_disables_caches(self):
        scenario = build_scenario(ScenarioConfig(seed=1))
        servers = binary_cache_servers(scenario)
        problem = pin_servers(scenario, servers)
        assert problem.network.cache_nodes() == []
        for server in servers:
            assert problem.pinned_items_at(server) == set(problem.catalog)
        # The original scenario is untouched.
        assert scenario.problem.network.cache_nodes() != []
