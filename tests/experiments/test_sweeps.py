"""Tests for the parameter-sweep helper."""

import pytest

from repro.core import Placement, Solution, route_to_nearest_replica
from repro.exceptions import InvalidProblemError
from repro.experiments import (
    MonteCarloConfig,
    ScenarioConfig,
    SWEEPABLE,
    sweep_parameter,
)


def origin_only(scenario):
    problem = scenario.problem
    return Solution(Placement(), route_to_nearest_replica(problem, Placement()))


BASE = ScenarioConfig(seed=0, link_capacity_fraction=None, num_videos=4)


class TestSweepParameter:
    def test_rows_per_value_and_algorithm(self):
        rows = sweep_parameter(
            BASE,
            "cache_capacity",
            [6, 12],
            {"origin": origin_only},
            MonteCarloConfig(n_runs=2),
        )
        assert len(rows) == 2
        assert {r["cache_capacity"] for r in rows} == {6, 12}
        assert all(r["algorithm"] == "origin" for r in rows)
        assert all(r["cost"] > 0 for r in rows)

    def test_origin_only_cost_independent_of_cache(self):
        rows = sweep_parameter(
            BASE,
            "cache_capacity",
            [6, 18],
            {"origin": origin_only},
            MonteCarloConfig(n_runs=1),
        )
        costs = [r["cost"] for r in rows]
        assert costs[0] == pytest.approx(costs[1])

    def test_unknown_parameter(self):
        with pytest.raises(InvalidProblemError):
            sweep_parameter(BASE, "nope", [1], {"o": origin_only})

    def test_unsweepable_parameter(self):
        with pytest.raises(InvalidProblemError):
            sweep_parameter(BASE, "seed", [1], {"o": origin_only})

    def test_empty_values(self):
        with pytest.raises(InvalidProblemError):
            sweep_parameter(BASE, "cache_capacity", [], {"o": origin_only})

    def test_sweepable_knobs_exist_on_config(self):
        from dataclasses import fields

        names = {f.name for f in fields(ScenarioConfig)}
        assert set(SWEEPABLE) <= names


class TestSweepCLI:
    def test_sweep_subcommand(self, capsys):
        from repro.cli import main

        code = main(
            [
                "sweep",
                "--parameter", "cache_capacity",
                "--values", "6,12",
                "--algorithms", "sp",
                "--runs", "1",
                "--link-fraction", "0",
                "--videos", "4",
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "sweep cache_capacity" in out
        assert "sp" in out
