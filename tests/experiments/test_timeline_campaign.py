"""Timeline campaigns through the Monte Carlo runner (extras side-channel)."""

import pytest

from repro.experiments import (
    MonteCarloConfig,
    ScenarioConfig,
    TimelineAlgorithm,
    build_scenario,
    run_timeline_campaign,
    timeline_rows,
)
from repro.experiments.algorithms import greedy
from repro.robustness import RecoveryPolicy, TimelineConfig

SMALL = ScenarioConfig(seed=0, num_videos=5, link_capacity_fraction=None,
                       num_edge_nodes=5)
TCFG = TimelineConfig(horizon=20.0, link_mtbf=60.0, link_mttr=3.0,
                      flap_probability=0.2)
MC = MonteCarloConfig(n_runs=2, base_seed=123)


class TestTimelineAlgorithm:
    def test_attaches_replay_summary(self):
        scenario = build_scenario(SMALL)
        wrapped = TimelineAlgorithm(greedy, timeline_config=TCFG)
        solution = wrapped(scenario)
        summary = solution.extra_metrics["timeline"]
        assert 0.0 <= summary["availability"] <= 1.0
        assert summary["events"] > 0
        assert summary["horizon"] == TCFG.horizon

    def test_healthy_solution_unchanged(self):
        scenario = build_scenario(SMALL)
        plain = greedy(scenario)
        wrapped = TimelineAlgorithm(greedy, timeline_config=TCFG)(scenario)
        assert dict(wrapped.placement.items()) == dict(plain.placement.items())
        assert wrapped.routing.paths == plain.routing.paths

    def test_origin_excluded_from_node_failures(self):
        scenario = build_scenario(SMALL)
        wrapped = TimelineAlgorithm(
            greedy,
            timeline_config=TimelineConfig(
                horizon=20.0, link_mtbf=None, node_mtbf=5.0, node_mttr=1.0
            ),
        )
        solution = wrapped(scenario)
        # The origin holds every pin; sparing it keeps availability > 0.
        assert solution.extra_metrics["timeline"]["availability"] > 0.0


class TestCampaign:
    def test_records_carry_timeline_extras(self):
        records = run_timeline_campaign(
            SMALL, {"greedy": greedy}, MC, timeline_config=TCFG
        )
        assert len(records) == 2
        for record in records:
            assert not record.failed
            summary = record.extra["timeline"]
            assert 0.0 <= summary["availability"] <= 1.0
        rows = timeline_rows(records)
        assert len(rows) == 2
        assert {"algorithm", "seed", "availability", "reopts"} <= rows[0].keys()

    def test_parallel_matches_serial(self):
        serial = run_timeline_campaign(
            SMALL, {"greedy": greedy}, MC, timeline_config=TCFG,
            policy=RecoveryPolicy(detection_delay=0.25),
        )
        parallel = run_timeline_campaign(
            SMALL, {"greedy": greedy}, MC, timeline_config=TCFG,
            policy=RecoveryPolicy(detection_delay=0.25),
            parallel=True, max_workers=2,
        )
        assert len(serial) == len(parallel) == 2
        for a, b in zip(serial, parallel):
            assert a.seed == b.seed
            assert a.cost == b.cost
            # wall-clock differs; everything else including the replay
            # summary must be bit-identical across process boundaries.
            sa = {k: v for k, v in a.extra["timeline"].items() if k != "wall_seconds"}
            sb = {k: v for k, v in b.extra["timeline"].items() if k != "wall_seconds"}
            assert sa == sb

    def test_rows_skip_records_without_extras(self):
        records = run_timeline_campaign(
            SMALL, {"greedy": greedy}, MonteCarloConfig(n_runs=1),
            timeline_config=TCFG,
        )
        from repro.experiments.runner import RunRecord

        bare = RunRecord(
            algorithm="bare", seed=0, cost=1.0, congestion=0.0,
            occupancy=0.0, seconds=0.0,
        )
        rows = timeline_rows([*records, bare])
        assert len(rows) == len(records)
