"""Tests for the Monte Carlo runner and reporting."""

import pytest

from repro.core import Placement, Solution, route_to_nearest_replica
from repro.exceptions import InfeasibleError
from repro.experiments import (
    MonteCarloConfig,
    ScenarioConfig,
    aggregate,
    evaluate_algorithm,
    format_aggregates,
    format_sweep,
    run_monte_carlo,
    write_records_csv,
    write_sweep_csv,
)
from repro.experiments.runner import RunRecord
from repro.experiments.scenarios import build_scenario


def origin_only(scenario):
    problem = scenario.problem
    return Solution(Placement(), route_to_nearest_replica(problem, Placement()))


def failing(scenario):
    raise InfeasibleError("nope")


SMALL = ScenarioConfig(seed=0, link_capacity_fraction=None)


class TestEvaluateAlgorithm:
    def test_measures_cost_and_time(self):
        scenario = build_scenario(SMALL)
        record = evaluate_algorithm("origin", origin_only, scenario)
        assert record.cost > 0
        assert record.seconds >= 0
        assert not record.failed
        assert record.congestion == 0.0  # uncapacitated

    def test_failure_is_recorded(self):
        scenario = build_scenario(SMALL)
        record = evaluate_algorithm("bad", failing, scenario)
        assert record.failed
        assert record.cost == float("inf")
        assert "nope" in record.extra["error"]

    def test_scores_against_true_demand(self):
        scenario = build_scenario(
            SMALL,
            predicted_rates={k: v * 2 for k, v in build_scenario(SMALL).video_rates.items()},
        )
        record = evaluate_algorithm("origin", origin_only, scenario)
        baseline = evaluate_algorithm(
            "origin", origin_only, build_scenario(SMALL)
        )
        # Same routing structure, same true demand -> same measured cost.
        assert record.cost == pytest.approx(baseline.cost)


class TestRunMonteCarlo:
    def test_runs_all_seeds_and_algorithms(self):
        records = run_monte_carlo(
            SMALL,
            {"origin": origin_only, "bad": failing},
            MonteCarloConfig(n_runs=3, base_seed=10),
        )
        assert len(records) == 6
        assert {r.seed for r in records} == {10, 11, 12}

    def test_aggregate_excludes_failures(self):
        records = run_monte_carlo(
            SMALL,
            {"origin": origin_only, "bad": failing},
            MonteCarloConfig(n_runs=2),
        )
        aggs = {a.algorithm: a for a in aggregate(records)}
        assert aggs["origin"].failures == 0
        assert aggs["origin"].mean_cost < float("inf")
        assert aggs["bad"].failures == 2
        assert aggs["bad"].mean_cost == float("inf")

    def test_aggregate_std(self):
        records = [
            RunRecord("x", 0, 10.0, 0, 0, 0.1),
            RunRecord("x", 1, 14.0, 0, 0, 0.1),
        ]
        agg = aggregate(records)[0]
        assert agg.mean_cost == pytest.approx(12.0)
        assert agg.std_cost == pytest.approx(2.0)


class TestReporting:
    def test_format_aggregates_contains_rows(self):
        records = [RunRecord("algo-a", 0, 123456.0, 1.5, 0.9, 0.01)]
        text = format_aggregates(aggregate(records), title="T")
        assert "algo-a" in text
        assert "T" in text
        assert "123,456" in text

    def test_format_aggregates_inf(self):
        records = [RunRecord("bad", 0, float("inf"), float("inf"), 0, 0.0, failed=True)]
        text = format_aggregates(aggregate(records))
        assert "inf" in text

    def test_format_sweep_alignment(self):
        text = format_sweep(
            [{"k": 1, "cost": 5.0}, {"k": 2, "cost": 7.0}],
            ["k", "cost"],
            title="sweep",
        )
        lines = text.splitlines()
        assert lines[0] == "sweep"
        assert len(lines) == 6

    def test_write_records_csv(self, tmp_path):
        records = [RunRecord("a", 0, 1.0, 0.5, 0.9, 0.01)]
        path = tmp_path / "out" / "records.csv"
        write_records_csv(records, path)
        content = path.read_text().splitlines()
        assert content[0].startswith("algorithm,seed,cost")
        assert content[1].startswith("a,0,1.0")

    def test_write_sweep_csv(self, tmp_path):
        path = tmp_path / "sweep.csv"
        write_sweep_csv([{"k": 1, "cost": 2.0, "junk": 3}], ["k", "cost"], path)
        lines = path.read_text().splitlines()
        assert lines[0] == "k,cost"
        assert lines[1] == "1,2.0"
