"""Tests for the Monte Carlo runner and reporting."""

import pytest

from repro.core import Placement, Solution, route_to_nearest_replica
from repro.exceptions import InfeasibleError
from repro.experiments import (
    MonteCarloConfig,
    ScenarioConfig,
    aggregate,
    evaluate_algorithm,
    format_aggregates,
    format_sweep,
    monte_carlo_seeds,
    run_monte_carlo,
    write_records_csv,
    write_sweep_csv,
)
from repro.experiments.algorithms import greedy, sp
from repro.experiments.runner import RunRecord
from repro.experiments.scenarios import build_scenario


def origin_only(scenario):
    problem = scenario.problem
    return Solution(Placement(), route_to_nearest_replica(problem, Placement()))


def failing(scenario):
    raise InfeasibleError("nope")


SMALL = ScenarioConfig(seed=0, link_capacity_fraction=None)


class TestEvaluateAlgorithm:
    def test_measures_cost_and_time(self):
        scenario = build_scenario(SMALL)
        record = evaluate_algorithm("origin", origin_only, scenario)
        assert record.cost > 0
        assert record.seconds >= 0
        assert not record.failed
        assert record.congestion == 0.0  # uncapacitated

    def test_failure_is_recorded(self):
        scenario = build_scenario(SMALL)
        record = evaluate_algorithm("bad", failing, scenario)
        assert record.failed
        assert record.cost == float("inf")
        assert "nope" in record.extra["error"]

    def test_scores_against_true_demand(self):
        scenario = build_scenario(
            SMALL,
            predicted_rates={k: v * 2 for k, v in build_scenario(SMALL).video_rates.items()},
        )
        record = evaluate_algorithm("origin", origin_only, scenario)
        baseline = evaluate_algorithm(
            "origin", origin_only, build_scenario(SMALL)
        )
        # Same routing structure, same true demand -> same measured cost.
        assert record.cost == pytest.approx(baseline.cost)


class TestServingReplay:
    HORIZON = 1e-3  # hours; paper-scale rates make this a few thousand requests

    def serving_config(self):
        from repro.serving import ServingConfig

        return ServingConfig(horizon=self.HORIZON, seed=0)

    def test_replay_summary_attached(self):
        scenario = build_scenario(SMALL)
        record = evaluate_algorithm(
            "origin", origin_only, scenario, self.serving_config()
        )
        serving = record.extra["serving"]
        assert serving["generated"] > 0
        assert serving["served_fraction"] == pytest.approx(1.0)
        assert serving["delivered_cost"] / self.HORIZON == pytest.approx(
            record.cost, rel=0.2
        )
        assert serving["requests_per_sec"] > 0

    def test_no_summary_without_config(self):
        scenario = build_scenario(SMALL)
        record = evaluate_algorithm("origin", origin_only, scenario)
        assert "serving" not in record.extra

    def test_algorithm_failure_skips_replay(self):
        scenario = build_scenario(SMALL)
        record = evaluate_algorithm(
            "bad", failing, scenario, self.serving_config()
        )
        assert record.failed
        assert "serving" not in record.extra

    def test_replay_failure_marks_summary_not_run(self):
        from repro.serving import ServingConfig

        scenario = build_scenario(SMALL)
        record = evaluate_algorithm(
            "origin",
            origin_only,
            scenario,
            ServingConfig(horizon=1e6, max_requests=1_000),
        )
        assert not record.failed
        assert record.cost > 0
        assert "error" in record.extra["serving"]

    def test_monte_carlo_threads_the_config(self):
        records = run_monte_carlo(
            SMALL,
            {"origin": origin_only},
            MonteCarloConfig(n_runs=2),
            serving_replay=self.serving_config(),
        )
        assert len(records) == 2
        for record in records:
            assert record.extra["serving"]["generated"] > 0


class TestRunMonteCarlo:
    def test_runs_all_seeds_and_algorithms(self):
        records = run_monte_carlo(
            SMALL,
            {"origin": origin_only, "bad": failing},
            MonteCarloConfig(n_runs=3, base_seed=10),
        )
        assert len(records) == 6
        assert {r.seed for r in records} == {10, 11, 12}

    def test_aggregate_excludes_failures(self):
        records = run_monte_carlo(
            SMALL,
            {"origin": origin_only, "bad": failing},
            MonteCarloConfig(n_runs=2),
        )
        aggs = {a.algorithm: a for a in aggregate(records)}
        assert aggs["origin"].failures == 0
        assert aggs["origin"].mean_cost < float("inf")
        assert aggs["bad"].failures == 2
        assert aggs["bad"].mean_cost == float("inf")

    def test_aggregate_std(self):
        records = [
            RunRecord("x", 0, 10.0, 0, 0, 0.1),
            RunRecord("x", 1, 14.0, 0, 0, 0.1),
        ]
        agg = aggregate(records)[0]
        assert agg.mean_cost == pytest.approx(12.0)
        assert agg.std_cost == pytest.approx(2.0)


class TestSeeds:
    def test_legacy_seeds_are_offsets(self):
        mc = MonteCarloConfig(n_runs=4, base_seed=7)
        assert monte_carlo_seeds(mc) == [7, 8, 9, 10]

    def test_spawn_seeds_deterministic_and_distinct(self):
        mc = MonteCarloConfig(n_runs=5, base_seed=3, spawn_seeds=True)
        first = monte_carlo_seeds(mc)
        assert first == monte_carlo_seeds(mc)
        assert len(set(first)) == 5
        assert first != [3, 4, 5, 6, 7]

    def test_spawn_seeds_depend_on_base_seed(self):
        a = monte_carlo_seeds(MonteCarloConfig(n_runs=3, base_seed=0, spawn_seeds=True))
        b = monte_carlo_seeds(MonteCarloConfig(n_runs=3, base_seed=1, spawn_seeds=True))
        assert a != b

    def test_runner_uses_spawned_seeds(self):
        mc = MonteCarloConfig(n_runs=2, base_seed=5, spawn_seeds=True)
        records = run_monte_carlo(SMALL, {"origin": origin_only}, mc)
        assert [r.seed for r in records] == monte_carlo_seeds(mc)


class TestParallelRunner:
    MC = MonteCarloConfig(n_runs=3, base_seed=1)

    def test_parallel_matches_serial_bit_for_bit(self):
        algorithms = {"greedy": greedy, "sp": sp}
        serial = run_monte_carlo(SMALL, algorithms, self.MC)
        parallel = run_monte_carlo(
            SMALL, algorithms, self.MC, parallel=True, max_workers=2
        )
        assert len(serial) == len(parallel) == 6
        for a, b in zip(serial, parallel):
            # Identical in everything except wall-clock timing.
            assert (a.algorithm, a.seed) == (b.algorithm, b.seed)
            assert a.cost == b.cost
            assert a.congestion == b.congestion
            assert a.occupancy == b.occupancy
            assert a.failed == b.failed
            assert a.extra == b.extra

    def test_parallel_single_run_stays_serial(self):
        records = run_monte_carlo(
            SMALL,
            {"origin": origin_only},
            MonteCarloConfig(n_runs=1),
            parallel=True,
        )
        assert len(records) == 1

    def test_unpicklable_algorithm_falls_back_to_serial(self, caplog):
        local = lambda scenario: origin_only(scenario)  # noqa: E731
        with caplog.at_level("WARNING", logger="repro.experiments.runner"):
            records = run_monte_carlo(
                SMALL,
                {"origin": local},
                MonteCarloConfig(n_runs=2),
                parallel=True,
            )
        assert len(records) == 2
        assert not any(r.failed for r in records)
        assert any("falling back to serial" in m for m in caplog.messages)

    def test_parallel_records_failures_like_serial(self):
        serial = run_monte_carlo(SMALL, {"origin": origin_only, "bad": failing}, self.MC)
        parallel = run_monte_carlo(
            SMALL,
            {"origin": origin_only, "bad": failing},
            self.MC,
            parallel=True,
            max_workers=2,
        )
        assert [(r.algorithm, r.seed, r.failed) for r in serial] == [
            (r.algorithm, r.seed, r.failed) for r in parallel
        ]


class TestReporting:
    def test_format_aggregates_contains_rows(self):
        records = [RunRecord("algo-a", 0, 123456.0, 1.5, 0.9, 0.01)]
        text = format_aggregates(aggregate(records), title="T")
        assert "algo-a" in text
        assert "T" in text
        assert "123,456" in text

    def test_format_aggregates_inf(self):
        records = [RunRecord("bad", 0, float("inf"), float("inf"), 0, 0.0, failed=True)]
        text = format_aggregates(aggregate(records))
        assert "inf" in text

    def test_format_sweep_alignment(self):
        text = format_sweep(
            [{"k": 1, "cost": 5.0}, {"k": 2, "cost": 7.0}],
            ["k", "cost"],
            title="sweep",
        )
        lines = text.splitlines()
        assert lines[0] == "sweep"
        assert len(lines) == 6

    def test_write_records_csv(self, tmp_path):
        records = [RunRecord("a", 0, 1.0, 0.5, 0.9, 0.01)]
        path = tmp_path / "out" / "records.csv"
        write_records_csv(records, path)
        content = path.read_text().splitlines()
        assert content[0].startswith("algorithm,seed,cost")
        assert content[1].startswith("a,0,1.0")

    def test_write_sweep_csv(self, tmp_path):
        path = tmp_path / "sweep.csv"
        write_sweep_csv([{"k": 1, "cost": 2.0, "junk": 3}], ["k", "cost"], path)
        lines = path.read_text().splitlines()
        assert lines[0] == "k,cost"
        assert lines[1] == "1,2.0"
