"""Shared-memory context broadcast through the Monte Carlo runner.

Covers the reuse-layer guarantees for parallel campaigns: records stay
bit-identical to serial execution with and without a broadcast, the
per-pool pickle payload is the O(|V|) handle rather than the O(|V|²)
matrix, and the shared-memory segment never outlives the campaign — not
even when a worker hard-crashes the pool (``BrokenProcessPool``).
"""

import pickle
from dataclasses import replace
from pathlib import Path

from repro.core.context import SolverContext
from repro.experiments import MonteCarloConfig, ScenarioConfig, run_monte_carlo
from repro.experiments.algorithms import greedy, sp
from repro.experiments.scenarios import build_scenario
from repro.graph.shm import MatrixBroadcast, graph_signature, lookup_matrix
from tests.experiments.test_runner_hardening import crash_worker

SMALL = ScenarioConfig(seed=0, link_capacity_fraction=None)
MC = MonteCarloConfig(n_runs=3, base_seed=1)


def fixed_topology_builder(config: ScenarioConfig):
    """Deterministic topology and costs regardless of the run seed.

    A broadcast only matches runs whose graph fingerprint equals the healthy
    context's; the default builder re-draws link costs per seed, so the
    fleet-wide reuse scenario is a fixed topology evaluated many times.
    """
    scenario = build_scenario(replace(config, seed=0))
    return replace(scenario, config=config)


def shm_segments() -> set[str]:
    shm = Path("/dev/shm")
    if not shm.exists():  # pragma: no cover - non-Linux
        return set()
    return {p.name for p in shm.iterdir()}


def broadcast_context() -> SolverContext:
    return SolverContext.from_problem(fixed_topology_builder(SMALL).problem)


def strip_seconds(records):
    return [
        (r.algorithm, r.seed, r.cost, r.congestion, r.occupancy, r.failed)
        for r in records
    ]


class TestBitIdentity:
    def test_broadcast_parallel_matches_plain_serial(self):
        algorithms = {"greedy": greedy, "sp": sp}
        serial = run_monte_carlo(
            SMALL, algorithms, MC, scenario_builder=fixed_topology_builder
        )
        broadcast = run_monte_carlo(
            SMALL,
            algorithms,
            MC,
            scenario_builder=fixed_topology_builder,
            parallel=True,
            max_workers=2,
            broadcast_context=broadcast_context(),
        )
        assert strip_seconds(serial) == strip_seconds(broadcast)

    def test_broadcast_serial_matches_plain_serial(self):
        plain = run_monte_carlo(
            SMALL, {"greedy": greedy}, MC, scenario_builder=fixed_topology_builder
        )
        shared = run_monte_carlo(
            SMALL,
            {"greedy": greedy},
            MC,
            scenario_builder=fixed_topology_builder,
            broadcast_context=broadcast_context(),
        )
        assert strip_seconds(plain) == strip_seconds(shared)

    def test_mismatched_signature_is_harmless(self):
        # Default builder re-draws costs per seed: the broadcast never
        # matches, every run builds fresh, results are unchanged.
        plain = run_monte_carlo(SMALL, {"sp": sp}, MC)
        stale = run_monte_carlo(
            SMALL, {"sp": sp}, MC, broadcast_context=broadcast_context()
        )
        assert strip_seconds(plain) == strip_seconds(stale)


class TestLifecycle:
    def test_no_segment_leak_after_parallel_campaign(self):
        before = shm_segments()
        run_monte_carlo(
            SMALL,
            {"sp": sp},
            MC,
            scenario_builder=fixed_topology_builder,
            parallel=True,
            max_workers=2,
            broadcast_context=broadcast_context(),
        )
        assert shm_segments() - before == set()

    def test_no_segment_leak_after_broken_pool(self):
        # crash_worker hard-kills its pool worker; the runner harvests the
        # affected runs serially and must still unlink the segment.
        before = shm_segments()
        records = run_monte_carlo(
            SMALL,
            {"crash": crash_worker},
            MC,
            scenario_builder=fixed_topology_builder,
            parallel=True,
            max_workers=2,
            broadcast_context=broadcast_context(),
        )
        assert shm_segments() - before == set()
        assert len(records) == MC.n_runs
        assert not any(r.failed for r in records)  # serial retries succeeded

    def test_registry_left_clean(self):
        ctx = broadcast_context()
        run_monte_carlo(
            SMALL,
            {"sp": sp},
            MC,
            scenario_builder=fixed_topology_builder,
            broadcast_context=ctx,
        )
        assert lookup_matrix(ctx.problem.network.graph) is None


class TestPayload:
    def test_handle_payload_independent_of_matrix_size(self):
        from repro.graph import build_distance_matrix, deltacom

        graph = deltacom().graph
        dm = build_distance_matrix(graph)
        with MatrixBroadcast(dm, graph_signature(graph)) as broadcast:
            handle_bytes = len(pickle.dumps(broadcast.handle))
        # The O(|V|²) payload never crosses the boundary per task — only the
        # O(|V|) handle does, once per pool.
        assert handle_bytes < dm.matrix.nbytes / 10
