"""Tests for the named algorithm wrappers used by the benches."""

import pytest

from repro.core import check_feasibility, congestion, routing_cost
from repro.experiments import (
    ScenarioConfig,
    algorithms as alg,
    binary_cache_servers,
    build_scenario,
    pin_servers,
)

UNLIMITED = ScenarioConfig(seed=0, link_capacity_fraction=None)
CAPACITATED = ScenarioConfig(seed=0)


@pytest.fixture(scope="module")
def unlimited_scenario():
    return build_scenario(UNLIMITED)


@pytest.fixture(scope="module")
def capacitated_scenario():
    return build_scenario(CAPACITATED)


class TestUncapacitatedWrappers:
    def test_alg1_feasible(self, unlimited_scenario):
        solution = alg.alg1(unlimited_scenario)
        assert check_feasibility(unlimited_scenario.problem, solution).feasible

    def test_greedy_feasible(self, unlimited_scenario):
        solution = alg.greedy(unlimited_scenario)
        assert check_feasibility(unlimited_scenario.problem, solution).feasible

    def test_alg1_beats_sp(self, unlimited_scenario):
        ours = routing_cost(
            unlimited_scenario.problem, alg.alg1(unlimited_scenario).routing
        )
        theirs = routing_cost(
            unlimited_scenario.problem, alg.sp(unlimited_scenario).routing
        )
        assert ours < theirs

    def test_ksp_wrapper_names(self):
        assert alg.ksp(10).__name__ == "ksp_10"


class TestGeneralCaseWrappers:
    def test_alternating_deterministic_per_seed(self, capacitated_scenario):
        a = alg.alternating()(capacitated_scenario)
        b = alg.alternating()(capacitated_scenario)
        assert routing_cost(capacitated_scenario.problem, a.routing) == pytest.approx(
            routing_cost(capacitated_scenario.problem, b.routing)
        )

    def test_alternating_low_congestion(self, capacitated_scenario):
        solution = alg.alternating(mmufp_method="best")(capacitated_scenario)
        assert congestion(capacitated_scenario.problem, solution.routing) < 2.0

    def test_fcfr_lower_bound(self, capacitated_scenario):
        lower = routing_cost(
            capacitated_scenario.problem, alg.fcfr(capacitated_scenario).routing
        )
        integral = routing_cost(
            capacitated_scenario.problem,
            alg.alternating(mmufp_method="best")(capacitated_scenario).routing,
        )
        assert lower <= integral + 1e-6


class TestBinaryCaseWrappers:
    def test_alg2_serves_everything(self, capacitated_scenario):
        servers = binary_cache_servers(capacitated_scenario)
        solution = alg.alg2_binary(servers, 10)(capacitated_scenario)
        problem = pin_servers(capacitated_scenario, servers)
        report = check_feasibility(
            problem.with_demand(capacitated_scenario.problem.demand), solution
        )
        assert report.served_ok and report.sources_ok

    def test_rnr_congests_more_than_alg2(self, capacitated_scenario):
        servers = binary_cache_servers(capacitated_scenario)
        problem = capacitated_scenario.problem
        rnr = alg.rnr_binary(servers)(capacitated_scenario)
        alg2 = alg.alg2_binary(servers, 1000)(capacitated_scenario)
        assert congestion(problem, rnr.routing) > congestion(problem, alg2.routing)

    def test_splittable_cheapest_feasible(self, capacitated_scenario):
        servers = binary_cache_servers(capacitated_scenario)
        problem = capacitated_scenario.problem
        split = alg.splittable_binary(servers)(capacitated_scenario)
        alg2 = alg.alg2_binary(servers, 1000)(capacitated_scenario)
        # Alg 2's cost never exceeds the splittable optimum (Thm 4.7(i)).
        assert routing_cost(problem, alg2.routing) <= routing_cost(
            problem, split.routing
        ) * 1.001
        assert congestion(problem, split.routing) <= 1 + 1e-6
