"""Tests for the online (hourly re-optimization) loop."""

import numpy as np
import pytest

from repro.core import Placement, Solution, route_to_nearest_replica
from repro.exceptions import InfeasibleError
from repro.experiments import ScenarioConfig
from repro.experiments.online import (
    HourRecord,
    OnlineResult,
    predict_rate_matrix,
    run_online,
)
from repro.workload import TraceConfig, synthesize_trace, top_videos


def origin_policy(scenario):
    problem = scenario.problem
    return Solution(Placement(), route_to_nearest_replica(problem, Placement()))


def failing_policy(scenario):
    raise InfeasibleError("boom")


FAST = ScenarioConfig(seed=0, link_capacity_fraction=None)


class TestOnlineResult:
    def test_totals(self):
        result = OnlineResult(
            algorithm="x",
            hours=[
                HourRecord(0, 10.0, 0.5, 1, 1),
                HourRecord(1, 20.0, 1.5, 1, 1),
                HourRecord(2, float("inf"), float("inf"), 1, 1, failed=True),
            ],
        )
        assert result.total_cost == pytest.approx(30.0)
        assert result.mean_congestion == pytest.approx(1.0)
        assert result.worst_congestion == pytest.approx(1.5)
        assert result.failures == 1

    def test_empty_result(self):
        result = OnlineResult(algorithm="x")
        assert result.mean_congestion == float("inf")


class TestRunOnline:
    def test_oracle_planning(self):
        result = run_online(FAST, origin_policy, name="origin", hours=3)
        assert len(result.hours) == 3
        assert result.failures == 0
        assert all(h.cost > 0 for h in result.hours)
        # Oracle: planning rates equal true rates.
        for h in result.hours:
            assert h.predicted_total_rate == pytest.approx(h.true_total_rate)

    def test_hourly_demand_changes(self):
        result = run_online(FAST, origin_policy, hours=4)
        costs = {round(h.cost, 3) for h in result.hours}
        assert len(costs) > 1  # the trace moves hour to hour

    def test_failures_recorded_and_loop_continues(self):
        result = run_online(FAST, failing_policy, hours=2)
        assert result.failures == 2
        assert len(result.hours) == 2

    def test_predicted_rates_from_matrix(self):
        trace_config = TraceConfig(seed=0)
        trace = synthesize_trace(videos=top_videos(10), config=trace_config)
        matrix = {
            video.video_id: trace.views[trace_config.train_hours :, k] * 1.2
            for k, video in enumerate(trace.videos)
        }
        result = run_online(
            FAST,
            origin_policy,
            hours=2,
            rate_matrix=matrix,
            trace=trace,
            trace_config=trace_config,
        )
        for h in result.hours:
            assert h.predicted_total_rate == pytest.approx(
                1.2 * h.true_total_rate, rel=1e-6
            )

    def test_predict_rate_matrix_shapes(self):
        trace_config = TraceConfig(seed=1)
        trace = synthesize_trace(videos=top_videos(3), config=trace_config)
        from repro.experiments import PredictionConfig

        matrix = predict_rate_matrix(
            trace,
            eval_hours=5,
            prediction=PredictionConfig(history_window=80, n_restarts=0),
        )
        assert set(matrix) == {v.video_id for v in trace.videos}
        for series in matrix.values():
            assert len(series) == 5
            assert (np.asarray(series) > 0).all()
