"""Hardened Monte Carlo runner: numerical failures, checkpoints, crashes.

Worker-crash helpers are module-level (picklable) and crash only inside a
pool worker (``multiprocessing.parent_process() is not None``), so the
serial re-execution path the runner falls back to completes normally.
"""

import json
import multiprocessing
import os
import time

import numpy as np
import pytest

from repro.core import Placement, Solution, route_to_nearest_replica
from repro.experiments import (
    MonteCarloConfig,
    ScenarioConfig,
    evaluate_algorithm,
    load_checkpoint,
    run_monte_carlo,
)
from repro.experiments.algorithms import greedy, sp
from repro.experiments.scenarios import build_scenario

SMALL = ScenarioConfig(seed=0, link_capacity_fraction=None)


def origin_only(scenario):
    problem = scenario.problem
    return Solution(Placement(), route_to_nearest_replica(problem, Placement()))


def raises_linalg(scenario):
    raise np.linalg.LinAlgError("singular projection matrix")


def raises_value(scenario):
    raise ValueError("scipy rejected the input")


def raises_zero_division(scenario):
    return 1 / 0


def crash_worker(scenario):
    if multiprocessing.parent_process() is not None:
        os._exit(1)  # hard-kill the pool worker; unreachable serially
    return origin_only(scenario)


def sleepy_on_seed_one(scenario):
    if scenario.config.seed == 1:
        time.sleep(6.0)
    return origin_only(scenario)


CALLS: list[int] = []


def recording(scenario):
    CALLS.append(scenario.config.seed)
    return origin_only(scenario)


def _strip_seconds(record):
    return (
        record.algorithm,
        record.seed,
        record.cost,
        record.congestion,
        record.occupancy,
        record.failed,
        record.extra,
    )


class TestNumericalFailures:
    @pytest.mark.parametrize(
        "algorithm, error_type",
        [
            (raises_linalg, "LinAlgError"),
            (raises_value, "ValueError"),
            (raises_zero_division, "ZeroDivisionError"),
        ],
    )
    def test_recorded_as_failed_with_traceback(self, algorithm, error_type):
        scenario = build_scenario(SMALL)
        record = evaluate_algorithm("numerics", algorithm, scenario)
        assert record.failed
        assert record.cost == float("inf")
        assert record.extra["error_type"] == error_type
        assert error_type in record.extra["traceback"]
        assert algorithm.__name__ in record.extra["traceback"]

    def test_campaign_survives_numerical_failures(self):
        records = run_monte_carlo(
            SMALL,
            {"bad": raises_linalg, "origin": origin_only},
            MonteCarloConfig(n_runs=2),
        )
        assert [r.failed for r in records] == [True, False, True, False]


class TestCheckpoint:
    MC = MonteCarloConfig(n_runs=4, base_seed=3)
    ALGORITHMS = {"greedy": greedy, "sp": sp}

    def test_resume_reproduces_uninterrupted_campaign(self, tmp_path, caplog):
        uninterrupted = run_monte_carlo(SMALL, self.ALGORITHMS, self.MC)
        path = tmp_path / "campaign.jsonl"
        run_monte_carlo(SMALL, self.ALGORITHMS, self.MC, checkpoint=path)
        # Simulate a kill -9 after two runs: drop the last two completed
        # lines and leave a half-written third.
        lines = path.read_text().splitlines()
        assert len(lines) == 4
        path.write_text("\n".join(lines[:2]) + "\n" + lines[2][: len(lines[2]) // 2])
        with caplog.at_level("WARNING", logger="repro.experiments.runner"):
            resumed = run_monte_carlo(
                SMALL, self.ALGORITHMS, self.MC, checkpoint=path
            )
        assert any("corrupt checkpoint line" in m for m in caplog.messages)
        # Bit-for-bit identical to the uninterrupted campaign, except the
        # measured wall-clock seconds (per the runner's documented guarantee).
        assert [_strip_seconds(r) for r in resumed] == [
            _strip_seconds(r) for r in uninterrupted
        ]
        # The checkpoint is now complete: a further resume re-runs nothing.
        CALLS.clear()
        run_monte_carlo(SMALL, {"greedy": greedy, "sp": sp}, self.MC, checkpoint=path)
        again = load_checkpoint(path)
        assert sorted(again) == [0, 1, 2, 3]

    def test_completed_runs_are_not_reexecuted(self, tmp_path):
        path = tmp_path / "campaign.jsonl"
        mc = MonteCarloConfig(n_runs=3, base_seed=20)
        run_monte_carlo(SMALL, {"rec": recording}, mc, checkpoint=path)
        lines = path.read_text().splitlines()
        path.write_text("\n".join(lines[:1]) + "\n")  # only run 0 survived
        CALLS.clear()
        run_monte_carlo(SMALL, {"rec": recording}, mc, checkpoint=path)
        assert CALLS == [21, 22]  # seeds of runs 1 and 2 only

    def test_seed_mismatch_invalidates_checkpoint_entry(self, tmp_path, caplog):
        path = tmp_path / "campaign.jsonl"
        mc = MonteCarloConfig(n_runs=2, base_seed=0)
        run_monte_carlo(SMALL, {"rec": recording}, mc, checkpoint=path)
        CALLS.clear()
        other = MonteCarloConfig(n_runs=2, base_seed=100)
        with caplog.at_level("WARNING", logger="repro.experiments.runner"):
            records = run_monte_carlo(SMALL, {"rec": recording}, other, checkpoint=path)
        assert any("does not match" in m for m in caplog.messages)
        assert CALLS == [100, 101]  # both runs re-executed
        assert [r.seed for r in records] == [100, 101]

    def test_load_checkpoint_missing_file(self, tmp_path):
        assert load_checkpoint(tmp_path / "nope.jsonl") == {}

    def test_checkpoint_lines_are_sorted_json(self, tmp_path):
        path = tmp_path / "campaign.jsonl"
        run_monte_carlo(
            SMALL, {"origin": origin_only}, MonteCarloConfig(n_runs=1), checkpoint=path
        )
        [line] = path.read_text().splitlines()
        payload = json.loads(line)
        assert list(payload) == sorted(payload)
        assert payload["run"] == 0
        assert payload["records"][0]["algorithm"] == "origin"


class TestWorkerCrash:
    def test_broken_pool_degrades_to_serial(self, caplog):
        mc = MonteCarloConfig(n_runs=3, base_seed=5)
        with caplog.at_level("WARNING", logger="repro.experiments.runner"):
            records = run_monte_carlo(
                SMALL, {"crash": crash_worker}, mc, parallel=True, max_workers=2
            )
        assert any("process pool broke" in m for m in caplog.messages)
        # Every affected seed was re-executed serially and completed.
        assert [r.seed for r in records] == [5, 6, 7]
        assert not any(r.failed for r in records)

    def test_broken_pool_with_checkpoint_still_resumable(self, tmp_path):
        path = tmp_path / "campaign.jsonl"
        mc = MonteCarloConfig(n_runs=2, base_seed=0)
        records = run_monte_carlo(
            SMALL,
            {"crash": crash_worker},
            mc,
            parallel=True,
            max_workers=2,
            checkpoint=path,
        )
        assert not any(r.failed for r in records)
        assert sorted(load_checkpoint(path)) == [0, 1]


class TestRunTimeout:
    def test_slow_run_recorded_as_timeout(self, caplog):
        mc = MonteCarloConfig(n_runs=2, base_seed=0)  # seed 1 sleeps 6s
        with caplog.at_level("WARNING", logger="repro.experiments.runner"):
            records = run_monte_carlo(
                SMALL,
                {"origin": sleepy_on_seed_one},
                mc,
                parallel=True,
                max_workers=2,
                run_timeout=2.0,
            )
        assert any("exceeded run_timeout" in m for m in caplog.messages)
        ok, timed_out = records
        assert (ok.seed, ok.failed) == (0, False)
        assert timed_out.seed == 1
        assert timed_out.failed
        assert timed_out.extra["error_type"] == "Timeout"
        assert "run_timeout" in timed_out.extra["error"]
