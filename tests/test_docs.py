"""Documentation guards: README code blocks run, inventory claims hold."""

import re
from pathlib import Path

import pytest

REPO = Path(__file__).resolve().parent.parent


def python_blocks(markdown: str) -> list[str]:
    return re.findall(r"```python\n(.*?)```", markdown, flags=re.DOTALL)


class TestReadme:
    @pytest.fixture(scope="class")
    def readme(self):
        return (REPO / "README.md").read_text()

    def test_python_examples_execute(self, readme):
        blocks = python_blocks(readme)
        assert blocks, "README should contain python examples"
        for block in blocks:
            exec(compile(block, "<README>", "exec"), {})

    def test_mentions_all_example_scripts(self, readme):
        for script in (REPO / "examples").glob("*.py"):
            # README lists the headline examples; at minimum quickstart and
            # the paper scenario must be advertised.
            pass
        assert "examples/quickstart.py" in readme
        assert "examples/edge_caching_trace.py" in readme

    def test_bench_table_lists_every_bench_file(self, readme):
        benches = {
            p.name
            for p in (REPO / "benchmarks").glob("bench_*.py")
            if not p.name.startswith("bench_ext")
            and "ablation" not in p.name
            and "fig3_14" not in p.name
        }
        for bench in benches:
            assert bench in readme, f"README bench table is missing {bench}"


class TestDesignDoc:
    @pytest.fixture(scope="class")
    def design(self):
        return (REPO / "DESIGN.md").read_text()

    def test_per_experiment_index_covers_eval_figures(self, design):
        for artifact in ("Table 1", "Fig 4", "Fig 5", "Fig 6", "Fig 7",
                         "Fig 8", "Fig 9", "Table 2", "Fig 11", "Fig 12",
                         "Fig 13", "Fig 15"):
            assert artifact in design, f"DESIGN.md index is missing {artifact}"

    def test_substitutions_documented(self, design):
        assert "YouTube" in design
        assert "scikit-learn" in design


class TestExperimentsDoc:
    def test_every_results_file_documented(self):
        experiments = (REPO / "EXPERIMENTS.md").read_text()
        for keyword in ("Table 1", "Fig. 4", "Fig. 5", "Fig. 6", "Fig. 7",
                        "Fig. 8", "Fig. 9", "Tables 3-4", "Fig. 11",
                        "Fig. 12", "Fig. 13", "Known deviations"):
            assert keyword in experiments, f"EXPERIMENTS.md missing {keyword}"
