"""Tests for Table 1 videos and catalog construction."""

import pytest

from repro.workload import (
    TABLE1_VIDEOS,
    chunk_level_catalog,
    file_level_catalog,
    top_videos,
)


class TestTable1:
    def test_twelve_videos(self):
        assert len(TABLE1_VIDEOS) == 12

    def test_chunk_counts_match_table1(self):
        expected = [5, 7, 8, 4, 9, 5, 2, 8, 2, 4, 4, 7]
        assert [v.num_chunks(100.0) for v in TABLE1_VIDEOS] == expected

    def test_total_views_column(self):
        assert TABLE1_VIDEOS[0].total_views == 14144021
        assert TABLE1_VIDEOS[-1].total_views == 368432

    def test_top_videos(self):
        assert len(top_videos(10)) == 10
        assert top_videos(1)[0].video_id == "dNCWe_6HAM8"

    def test_top_videos_bounds(self):
        with pytest.raises(ValueError):
            top_videos(0)
        with pytest.raises(ValueError):
            top_videos(13)


class TestCatalogs:
    def test_chunk_level_default_matches_paper(self):
        # |C| = 54 for the top-10 videos at 100 MB (Section 6).
        cat = chunk_level_catalog(top_videos(10))
        assert cat.num_items == 54
        assert cat.sizes is None

    def test_chunk_level_smaller_chunks(self):
        # Appendix D: 25 MB -> 199 chunks, 50 MB -> 103 chunks (top 10).
        assert chunk_level_catalog(top_videos(10), chunk_mb=25.0).num_items == 199
        assert chunk_level_catalog(top_videos(10), chunk_mb=50.0).num_items == 103

    def test_chunk_ids_unique(self):
        cat = chunk_level_catalog(TABLE1_VIDEOS)
        assert len(set(cat.items)) == len(cat.items)

    def test_item_of_video_round_trip(self):
        cat = chunk_level_catalog(top_videos(3))
        total = sum(len(chunks) for chunks in cat.item_of_video.values())
        assert total == cat.num_items

    def test_file_level_heterogeneous(self):
        cat = file_level_catalog(top_videos(10))
        assert cat.num_items == 10
        assert cat.sizes is not None
        assert cat.sizes["dNCWe_6HAM8"] == pytest.approx(450.8789)
        assert cat.item_of_video["dNCWe_6HAM8"] == ("dNCWe_6HAM8",)
