"""Tests for workload statistics helpers."""

import numpy as np
import pytest

from repro.exceptions import InvalidProblemError
from repro.workload import TraceConfig, synthesize_trace, zipf_popularity
from repro.workload.statistics import (
    autocorrelation,
    demand_concentration,
    fit_zipf_exponent,
    peak_to_mean_ratio,
    per_node_demand,
    summarize_trace,
)


class TestZipfFit:
    def test_recovers_known_exponent(self):
        for alpha in (0.5, 0.8, 1.2):
            pop = zipf_popularity(200, alpha=alpha)
            assert fit_zipf_exponent(pop) == pytest.approx(alpha, abs=0.05)

    def test_uniform_is_zero(self):
        assert fit_zipf_exponent(np.ones(50)) == pytest.approx(0.0, abs=1e-9)

    def test_too_few_values(self):
        with pytest.raises(InvalidProblemError):
            fit_zipf_exponent(np.array([1.0]))

    def test_zero_entries_ignored(self):
        pop = np.array([8.0, 4.0, 2.0, 1.0, 0.0, 0.0])
        assert fit_zipf_exponent(pop) > 0


class TestTemporalStats:
    def test_peak_to_mean_constant_series(self):
        assert peak_to_mean_ratio(np.full(24, 5.0)) == pytest.approx(1.0)

    def test_peak_to_mean_spiky(self):
        series = np.ones(10)
        series[3] = 11.0
        assert peak_to_mean_ratio(series) == pytest.approx(11.0 / 2.0)

    def test_peak_to_mean_invalid(self):
        with pytest.raises(InvalidProblemError):
            peak_to_mean_ratio(np.array([]))

    def test_autocorrelation_periodic(self):
        t = np.arange(200)
        series = np.sin(2 * np.pi * t / 24.0)
        assert autocorrelation(series, 24) == pytest.approx(1.0, abs=0.05)
        assert autocorrelation(series, 12) == pytest.approx(-1.0, abs=0.05)

    def test_autocorrelation_bad_lag(self):
        with pytest.raises(InvalidProblemError):
            autocorrelation(np.ones(5), 0)
        with pytest.raises(InvalidProblemError):
            autocorrelation(np.ones(5), 5)


class TestSummaries:
    def test_summarize_trace(self):
        trace = synthesize_trace(config=TraceConfig(seed=0))
        summary = summarize_trace(trace)
        assert summary.num_videos == 12
        assert summary.num_hours == 650
        assert summary.total_views > 0
        assert summary.zipf_alpha > 0.3  # Table 1 is clearly skewed
        assert summary.peak_to_mean > 1.0
        assert summary.diurnal_autocorrelation > 0.0

    def test_demand_concentration(self):
        demand = {("a", k): rate for k, rate in enumerate([90.0] + [1.0] * 9)}
        assert demand_concentration(demand, 0.1) == pytest.approx(90 / 99)

    def test_demand_concentration_validation(self):
        with pytest.raises(InvalidProblemError):
            demand_concentration({}, 0.1)
        with pytest.raises(InvalidProblemError):
            demand_concentration({("a", 1): 1.0}, 0.0)

    def test_per_node_demand(self):
        demand = {("a", "x"): 2.0, ("b", "x"): 3.0, ("a", "y"): 1.0}
        assert per_node_demand(demand) == pytest.approx({"x": 5.0, "y": 1.0})
