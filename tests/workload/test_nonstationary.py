"""Non-stationary workload regimes: windows, plateaus, churn conservation."""

import numpy as np
import pytest

from repro.core import Placement, route_to_nearest_replica
from repro.exceptions import InvalidProblemError
from repro.serving import compile_tables
from repro.workload import (
    CompositeRegime,
    DiurnalCycle,
    FlashCrowd,
    PopularityChurn,
    WorkloadRegime,
)

from tests.core.conftest import make_line_problem


@pytest.fixture
def tables():
    prob = make_line_problem(catalog_size=3, demand={
        ("item0", 4): 5.0, ("item1", 4): 2.0, ("item2", 3): 1.0,
    })
    return compile_tables(prob, route_to_nearest_replica(prob, Placement()))


class TestBaseRegime:
    def test_identity(self, tables):
        regime = WorkloadRegime()
        assert regime.breakpoints(10.0) == ()
        assert np.array_equal(
            regime.multipliers(3.0, tables), np.ones(tables.num_types)
        )
        assert regime.scale(tables, 3.0) is tables


class TestFlashCrowd:
    def test_window_breakpoints_clipped_to_horizon(self):
        fc = FlashCrowd(start=2.0, duration=3.0, hot_items=("item0",))
        assert fc.breakpoints(10.0) == (2.0, 5.0)
        assert fc.breakpoints(4.0) == (2.0,)
        assert FlashCrowd(start=0.0, duration=3.0).breakpoints(10.0) == (3.0,)

    def test_multiplier_applies_only_inside_window_to_hot_items(self, tables):
        fc = FlashCrowd(
            start=2.0, duration=3.0, hot_items=("item0",), multiplier=100.0
        )
        hot = [k for k, (item, _s) in enumerate(tables.types) if item == "item0"]
        cold = [k for k in range(tables.num_types) if k not in hot]
        inside = fc.multipliers(2.0, tables)
        assert (inside[hot] == 100.0).all()
        assert (inside[cold] == 1.0).all()
        assert (fc.multipliers(1.9, tables) == 1.0).all()
        assert (fc.multipliers(5.0, tables) == 1.0).all()
        scaled = fc.scale(tables, 3.0)
        assert scaled.total_rate == pytest.approx(
            tables.total_rate + 99.0 * tables.rates[hot].sum()
        )

    def test_unknown_hot_item_is_identity(self, tables):
        fc = FlashCrowd(start=0.0, duration=5.0, hot_items=("nope",))
        assert fc.scale(tables, 1.0) is tables

    def test_validation(self):
        with pytest.raises(InvalidProblemError):
            FlashCrowd(start=0.0, duration=0.0)
        with pytest.raises(InvalidProblemError):
            FlashCrowd(start=0.0, duration=1.0, multiplier=0.0)


class TestDiurnalCycle:
    def test_breakpoints_are_plateau_edges(self):
        dc = DiurnalCycle(period=8.0, steps=4)
        assert dc.breakpoints(8.0) == (2.0, 4.0, 6.0)
        assert dc.breakpoints(5.0) == (2.0, 4.0)

    def test_rates_stay_positive_and_average_out(self, tables):
        dc = DiurnalCycle(period=10.0, amplitude=0.9, steps=20)
        times = [0.0] + list(dc.breakpoints(10.0))
        factors = [dc.multipliers(t, tables)[0] for t in times]
        assert all(f > 0.0 for f in factors)
        assert np.mean(factors) == pytest.approx(1.0, abs=1e-6)

    def test_plateau_constant_between_breakpoints(self, tables):
        dc = DiurnalCycle(period=10.0, steps=5)
        assert np.array_equal(
            dc.multipliers(0.0, tables), dc.multipliers(1.9, tables)
        )
        assert not np.array_equal(
            dc.multipliers(0.0, tables), dc.multipliers(2.0, tables)
        )

    def test_validation(self):
        with pytest.raises(InvalidProblemError):
            DiurnalCycle(period=0.0)
        with pytest.raises(InvalidProblemError):
            DiurnalCycle(period=1.0, amplitude=1.0)
        with pytest.raises(InvalidProblemError):
            DiurnalCycle(period=1.0, steps=1)


class TestPopularityChurn:
    def test_epoch0_is_identity(self, tables):
        churn = PopularityChurn(interval=5.0)
        assert churn.scale(tables, 0.0) is tables
        assert churn.scale(tables, 4.9) is tables

    def test_total_rate_conserved_exactly(self, tables):
        churn = PopularityChurn(interval=5.0, seed=3)
        for epoch_start in (5.0, 10.0, 15.0, 20.0):
            scaled = churn.scale(tables, epoch_start)
            # Exact conservation, not approximate: weights are permuted.
            assert scaled.total_rate == pytest.approx(
                tables.total_rate, rel=1e-12
            )

    def test_permutation_changes_item_weights(self, tables):
        churn = PopularityChurn(interval=5.0, seed=0)
        changed = any(
            not np.array_equal(
                churn.multipliers(t, tables), np.ones(tables.num_types)
            )
            for t in (5.0, 10.0, 15.0, 20.0, 25.0)
        )
        assert changed

    def test_deterministic_per_epoch(self, tables):
        a = PopularityChurn(interval=5.0, seed=1)
        b = PopularityChurn(interval=5.0, seed=1)
        assert np.array_equal(a.multipliers(7.0, tables), b.multipliers(7.0, tables))
        # Mid-epoch times share the epoch's permutation.
        assert np.array_equal(
            a.multipliers(5.0, tables), a.multipliers(9.9, tables)
        )

    def test_breakpoints(self):
        churn = PopularityChurn(interval=4.0)
        assert churn.breakpoints(12.0) == (4.0, 8.0)
        assert churn.breakpoints(12.5) == (4.0, 8.0, 12.0)

    def test_validation(self):
        with pytest.raises(InvalidProblemError):
            PopularityChurn(interval=0.0)


class TestCompositeRegime:
    def test_breakpoints_union_sorted(self):
        comp = CompositeRegime((
            FlashCrowd(start=3.0, duration=4.0),
            PopularityChurn(interval=5.0),
        ))
        assert comp.breakpoints(12.0) == (3.0, 5.0, 7.0, 10.0)

    def test_multipliers_multiply(self, tables):
        fc = FlashCrowd(start=0.0, duration=10.0, hot_items=("item0",),
                        multiplier=10.0)
        dc = DiurnalCycle(period=10.0, amplitude=0.5, steps=5)
        comp = CompositeRegime((fc, dc))
        expect = fc.multipliers(1.0, tables) * dc.multipliers(1.0, tables)
        assert np.array_equal(comp.multipliers(1.0, tables), expect)

    def test_empty_composite_is_identity(self, tables):
        assert CompositeRegime(()).scale(tables, 1.0) is tables
