"""Tests for the synthetic view trace."""

import numpy as np
import pytest

from repro.workload import (
    TABLE1_VIDEOS,
    TraceConfig,
    split_train_eval,
    synthesize_trace,
)


class TestSynthesizeTrace:
    def test_shape(self):
        cfg = TraceConfig(eval_hours=50, train_hours=100, seed=3)
        trace = synthesize_trace(config=cfg)
        assert trace.views.shape == (150, 12)
        assert trace.num_hours == 150

    def test_eval_totals_match_table1(self):
        cfg = TraceConfig(seed=7)
        trace = synthesize_trace(config=cfg)
        _, eval_trace = split_train_eval(trace, cfg)
        for video in TABLE1_VIDEOS:
            assert eval_trace.total_views(video.video_id) == pytest.approx(
                video.total_views, rel=1e-9
            )

    def test_all_views_positive(self):
        trace = synthesize_trace(config=TraceConfig(seed=1))
        assert (trace.views > 0).all()

    def test_seed_reproducible(self):
        a = synthesize_trace(config=TraceConfig(seed=5))
        b = synthesize_trace(config=TraceConfig(seed=5))
        assert np.array_equal(a.views, b.views)

    def test_different_seeds_differ(self):
        a = synthesize_trace(config=TraceConfig(seed=5))
        b = synthesize_trace(config=TraceConfig(seed=6))
        assert not np.array_equal(a.views, b.views)

    def test_diurnal_signal_present(self):
        """Autocorrelation at lag 24 should clearly beat lag 11."""
        cfg = TraceConfig(seed=2, noise_sigma=0.02)
        trace = synthesize_trace(config=cfg)
        x = trace.series(TABLE1_VIDEOS[0].video_id)
        x = (x - x.mean()) / x.std()

        def autocorr(lag):
            return float(np.mean(x[:-lag] * x[lag:]))

        assert autocorr(24) > autocorr(11) + 0.1

    def test_series_unknown_video(self):
        trace = synthesize_trace(config=TraceConfig(seed=1))
        with pytest.raises(KeyError):
            trace.series("nope")

    def test_rates_at(self):
        trace = synthesize_trace(config=TraceConfig(seed=1))
        rates = trace.rates_at(0)
        assert len(rates) == 12
        assert all(r > 0 for r in rates.values())

    def test_window(self):
        trace = synthesize_trace(config=TraceConfig(seed=1))
        window = trace.window(10, 20)
        assert window.num_hours == 10
        assert np.array_equal(window.views, trace.views[10:20])

    def test_bad_shape_rejected(self):
        from repro.workload.trace import ViewTrace

        with pytest.raises(ValueError):
            ViewTrace(videos=TABLE1_VIDEOS, views=np.zeros((10, 3)))
