"""Tests for request-matrix construction and perturbation."""

import numpy as np
import pytest

from repro.exceptions import InvalidProblemError
from repro.workload import (
    build_demand,
    build_demand_report,
    chunk_level_catalog,
    edge_node_shares,
    file_level_catalog,
    perturb_demand,
    top_videos,
    total_chunk_rate,
    zipf_demand,
    zipf_popularity,
)


class TestShares:
    def test_shares_sum_to_one(self):
        rng = np.random.default_rng(0)
        shares = edge_node_shares(["a", "b", "c"], ["v1", "v2"], rng)
        for w in shares.values():
            assert w.sum() == pytest.approx(1.0)
            assert len(w) == 3

    def test_no_edge_nodes_rejected(self):
        with pytest.raises(InvalidProblemError):
            edge_node_shares([], ["v1"], np.random.default_rng(0))


class TestBuildDemand:
    def test_chunk_expansion(self):
        videos = top_videos(2)  # 5 + 7 chunks
        cat = chunk_level_catalog(videos)
        rng = np.random.default_rng(1)
        shares = edge_node_shares(["e1", "e2"], [v.video_id for v in videos], rng)
        rates = {videos[0].video_id: 10.0, videos[1].video_id: 4.0}
        demand = build_demand(rates, cat, ["e1", "e2"], shares)
        # every chunk of video 0 sees total rate 10 across edge nodes
        for chunk in cat.item_of_video[videos[0].video_id]:
            total = sum(r for (i, _s), r in demand.items() if i == chunk)
            assert total == pytest.approx(10.0)

    def test_file_level_one_item_per_video(self):
        videos = top_videos(3)
        cat = file_level_catalog(videos)
        rng = np.random.default_rng(1)
        shares = edge_node_shares(["e1"], [v.video_id for v in videos], rng)
        demand = build_demand({v.video_id: 2.0 for v in videos}, cat, ["e1"], shares)
        assert len(demand) == 3

    def test_unknown_video_rejected(self):
        cat = file_level_catalog(top_videos(2))
        with pytest.raises(InvalidProblemError):
            build_demand({"nope": 1.0}, cat, ["e1"], {"nope": np.array([1.0])})

    def test_share_length_mismatch_rejected(self):
        videos = top_videos(1)
        cat = file_level_catalog(videos)
        with pytest.raises(InvalidProblemError):
            build_demand(
                {videos[0].video_id: 1.0},
                cat,
                ["e1", "e2"],
                {videos[0].video_id: np.array([1.0])},
            )

    def test_dropped_mass_is_reported_and_conserved(self):
        # Regression: rates below min_rate used to vanish silently, so the
        # demand no longer summed to the video rates.  The report makes the
        # lost mass explicit and conservation checkable.
        videos = top_videos(1)
        cat = chunk_level_catalog(videos)
        vid = videos[0].video_id
        shares = {vid: np.array([1.0 - 1e-7, 1e-7])}
        report = build_demand_report(
            {vid: 1.0}, cat, ["e1", "e2"], shares, min_rate=1e-6
        )
        n_items = len(cat.item_of_video[vid])
        assert report.dropped_entries == n_items  # the e2 share of each chunk
        assert report.dropped_mass == pytest.approx(1e-7 * n_items)
        assert sum(report.demand.values()) + report.dropped_mass == pytest.approx(
            total_chunk_rate({vid: 1.0}, cat)
        )

    def test_nothing_dropped_above_cutoff(self):
        videos = top_videos(2)
        cat = chunk_level_catalog(videos)
        rng = np.random.default_rng(3)
        shares = edge_node_shares(["e1", "e2"], [v.video_id for v in videos], rng)
        rates = {v.video_id: 10.0 for v in videos}
        report = build_demand_report(rates, cat, ["e1", "e2"], shares)
        assert report.dropped_mass == 0.0
        assert report.dropped_entries == 0
        assert sum(report.demand.values()) == pytest.approx(
            total_chunk_rate(rates, cat)
        )
        # The wrapper agrees with the report in both modes.
        assert build_demand(rates, cat, ["e1", "e2"], shares) == report.demand
        assert (
            build_demand(rates, cat, ["e1", "e2"], shares, strict=True)
            == report.demand
        )

    def test_strict_mode_rejects_dropped_mass(self):
        videos = top_videos(1)
        cat = chunk_level_catalog(videos)
        vid = videos[0].video_id
        shares = {vid: np.array([0.5, 0.5])}
        with pytest.raises(InvalidProblemError, match="dropped"):
            build_demand({vid: 1e-10}, cat, ["e1", "e2"], shares, strict=True)

    def test_total_chunk_rate_matches_paper(self):
        """Top-10 totals / 100h -> ~1,949,666.52 chunks/hour (Section 6)."""
        videos = top_videos(10)
        cat = chunk_level_catalog(videos)
        rates = {v.video_id: v.total_views / 100.0 for v in videos}
        assert total_chunk_rate(rates, cat) == pytest.approx(1949666.52, rel=1e-6)


class TestPerturbDemand:
    def test_zero_sigma_is_identity(self):
        demand = {("a", 1): 2.0, ("b", 2): 3.0}
        out = perturb_demand(demand, 0.0, np.random.default_rng(0))
        assert out == pytest.approx(demand)

    def test_rates_stay_positive(self):
        demand = {("a", 1): 1.0}
        rng = np.random.default_rng(0)
        for _ in range(100):
            out = perturb_demand(demand, 5.0, rng)
            assert out[("a", 1)] > 0

    def test_negative_sigma_rejected(self):
        with pytest.raises(InvalidProblemError):
            perturb_demand({}, -1.0, np.random.default_rng(0))

    def test_relative_scale(self):
        demand = {("a", 1): 100.0}
        rng = np.random.default_rng(42)
        samples = [
            perturb_demand(demand, 0.1, rng)[("a", 1)] for _ in range(300)
        ]
        rel_err = np.std(np.array(samples) - 100.0) / 100.0
        assert rel_err == pytest.approx(0.1, rel=0.25)


class TestZipf:
    def test_popularity_normalized_and_decreasing(self):
        p = zipf_popularity(10, alpha=1.0)
        assert p.sum() == pytest.approx(1.0)
        assert all(p[k] >= p[k + 1] for k in range(9))

    def test_alpha_zero_uniform(self):
        p = zipf_popularity(4, alpha=0.0)
        assert p == pytest.approx(np.full(4, 0.25))

    def test_invalid_args(self):
        with pytest.raises(InvalidProblemError):
            zipf_popularity(0)
        with pytest.raises(InvalidProblemError):
            zipf_popularity(3, alpha=-1)

    def test_zipf_demand_total(self):
        demand = zipf_demand(
            [f"i{k}" for k in range(5)],
            ["e1", "e2"],
            total_rate=100.0,
            rng=np.random.default_rng(0),
        )
        assert sum(demand.values()) == pytest.approx(100.0)

    def test_zipf_demand_validation(self):
        with pytest.raises(InvalidProblemError):
            zipf_demand(["i"], ["e"], total_rate=0.0)
        with pytest.raises(InvalidProblemError):
            zipf_demand(["i"], [], total_rate=1.0)
